"""Tracing frameworks compared in the paper's evaluation.

All frameworks implement the :class:`~repro.baselines.base.TracingFramework`
interface — including the unified query plane: every one is a
:class:`~repro.query.engine.QueryEngine` answering
:class:`~repro.query.result.QueryResult` — and are charged through
identical byte meters, so the Fig. 11 comparison is apples-to-apples:

* ``OTFull`` — OpenTelemetry, 100 % sampling (the no-reduction reference);
* ``OTHead`` — head sampling at a fixed rate (default 5 %);
* ``OTTail`` — tail sampling on the ``is_abnormal`` tag;
* ``Hindsight`` — retroactive sampling with breadcrumbs (NSDI '23);
* ``Sieve`` — RRCF-based biased tail sampling (ICWS '21).

``MintFramework`` — this paper's system — is *not* a baseline and
lives at :mod:`repro.framework` since PR 5; it is still importable
from here (lazily, to keep the package import-cycle-free) for
backwards compatibility.
"""

from typing import TYPE_CHECKING

from repro.baselines.base import FrameworkQueryResult, TracingFramework
from repro.baselines.hindsight import Hindsight
from repro.baselines.otel import OTFull, OTHead, OTTail
from repro.baselines.rrcf import RandomCutTree, RobustRandomCutForest
from repro.baselines.sieve import Sieve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.framework import MintFramework

__all__ = [
    "TracingFramework",
    "FrameworkQueryResult",
    "OTFull",
    "OTHead",
    "OTTail",
    "Hindsight",
    "Sieve",
    "RobustRandomCutForest",
    "RandomCutTree",
    "MintFramework",
]


def __getattr__(name: str):
    # Deprecated re-export, resolved lazily: repro.framework subclasses
    # TracingFramework from this package, so an eager import here would
    # be a cycle whenever repro.framework is imported first.
    if name == "MintFramework":
        from repro.framework import MintFramework

        return MintFramework
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
