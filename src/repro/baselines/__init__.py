"""Tracing frameworks compared in the paper's evaluation.

All frameworks implement the :class:`~repro.baselines.base.TracingFramework`
interface and are charged through identical byte meters, so the Fig. 11
comparison is apples-to-apples:

* ``OTFull`` — OpenTelemetry, 100 % sampling (the no-reduction reference);
* ``OTHead`` — head sampling at a fixed rate (default 5 %);
* ``OTTail`` — tail sampling on the ``is_abnormal`` tag;
* ``Hindsight`` — retroactive sampling with breadcrumbs (NSDI '23);
* ``Sieve`` — RRCF-based biased tail sampling (ICWS '21);
* ``MintFramework`` — this paper; its
  :class:`~repro.transport.deployment.Deployment` parameter selects the
  topology (single backend, or N shards — shard-count-invariant by
  construction), so one class covers every deployment.
"""

from repro.baselines.base import FrameworkQueryResult, TracingFramework
from repro.baselines.hindsight import Hindsight
from repro.baselines.mint_framework import MintFramework
from repro.baselines.otel import OTFull, OTHead, OTTail
from repro.baselines.rrcf import RandomCutTree, RobustRandomCutForest
from repro.baselines.sieve import Sieve

__all__ = [
    "TracingFramework",
    "FrameworkQueryResult",
    "OTFull",
    "OTHead",
    "OTTail",
    "Hindsight",
    "Sieve",
    "RobustRandomCutForest",
    "RandomCutTree",
    "MintFramework",
]
