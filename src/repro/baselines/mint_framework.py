"""Deprecated location of :class:`~repro.framework.MintFramework`.

Mint is the system under test, not a baseline; since PR 5 the class
lives at :mod:`repro.framework`.  This module remains so historical
imports (``from repro.baselines.mint_framework import MintFramework``)
keep working; new code should import from :mod:`repro.framework` (or
``from repro import MintFramework``).
"""

from __future__ import annotations

import warnings

from repro.framework import MintFramework, SamplerFactory

__all__ = ["MintFramework", "SamplerFactory"]

warnings.warn(
    "repro.baselines.mint_framework is deprecated; import MintFramework "
    "from repro.framework (or from repro) instead",
    DeprecationWarning,
    stacklevel=2,
)
