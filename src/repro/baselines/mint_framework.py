"""Mint behind the common :class:`TracingFramework` interface.

Deploys one agent + collector per application node (nodes are
discovered from incoming spans), a shared backend, and transports that
charge the network meter with every report's wire size.  Storage is
whatever the backend's storage engine actually persists — patterns,
Bloom filters and sampled parameters.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.config import MintConfig
from repro.agent.reports import Report
from repro.agent.samplers import Sampler
from repro.backend.backend import MintBackend
from repro.backend.querier import QueryResult
from repro.backend.sharded import ShardedBackend, ShardSummary
from repro.baselines.base import FrameworkQueryResult, TracingFramework
from repro.model.span import Span
from repro.model.trace import Trace
from repro.sim.meters import OverheadLedger, ShardLedgerRow

SamplerFactory = Callable[[], Sampler]


class MintFramework(TracingFramework):
    """The full Mint deployment as one comparable framework."""

    name = "Mint"

    def __init__(
        self,
        config: MintConfig | None = None,
        extra_sampler_factories: list[SamplerFactory] | None = None,
        auto_warmup_traces: int = 100,
    ) -> None:
        super().__init__()
        self.config = config or MintConfig()
        self._extra_factories = list(extra_sampler_factories or [])
        self.backend = self._make_backend()
        self._collectors: dict[str, MintCollector] = {}
        self._now = 0.0
        self._warmed_up = False
        self._auto_warmup_traces = auto_warmup_traces
        self._warmup_queue: list[Trace] = []
        self._last_storage = 0

    def _make_backend(self) -> MintBackend:
        """Backend construction hook (the sharded deployment overrides)."""
        return MintBackend(
            bloom_buffer_bytes=self.config.bloom_buffer_bytes,
            bloom_fpp=self.config.bloom_fpp,
            notify_meter=self._charge_notify,
        )

    # ------------------------------------------------------------------
    # Warm-up (paper Section 3.2.1 offline stage)
    # ------------------------------------------------------------------
    def warm_up(self, traces: Iterable[Trace]) -> None:
        """Run the offline warm-up on sampled raw traces.

        Spans are routed to their node's agent; each agent builds its
        attribute parsers from its local sample.  Warm-up happens before
        any metering — the paper treats it as an offline bootstrap.
        """
        per_node: dict[str, list[Span]] = {}
        for trace in traces:
            for span in trace.spans:
                per_node.setdefault(span.node, []).append(span)
        for node, spans in per_node.items():
            collector = self._collector_for(node)
            collector.agent.warm_up(spans)
        self._warmed_up = True

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def process_trace(self, trace: Trace, now: float = 0.0) -> None:
        self._now = now
        if not self._warmed_up:
            self._warmup_queue.append(trace)
            if len(self._warmup_queue) >= self._auto_warmup_traces:
                self._drain_warmup_queue()
            return
        self._process_online(trace, now)

    def _drain_warmup_queue(self) -> None:
        queued = self._warmup_queue
        self._warmup_queue = []
        self.warm_up(queued)
        for trace in queued:
            self._process_online(trace, self._now)

    def _process_online(self, trace: Trace, now: float) -> None:
        sampled_on: list[str] = []
        for sub_trace in trace.sub_traces():
            collector = self._collector_for(sub_trace.node)
            result = collector.process(sub_trace, now)
            if result.sampled:
                sampled_on.append(sub_trace.node)
        for node in sampled_on:
            self.backend.notify_sampled(trace.trace_id, origin_node=node)
        self._sync_storage_meter(now)

    def finalize(self, now: float = 0.0) -> None:
        """Flush warm-up queue, pattern reports, Bloom filters, params."""
        self._now = now
        if not self._warmed_up and self._warmup_queue:
            self._drain_warmup_queue()
        for collector in self._collectors.values():
            collector.flush(now)
        self._sync_storage_meter(now)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, trace_id: str) -> FrameworkQueryResult:
        result = self.backend.query(trace_id)
        return FrameworkQueryResult(trace_id=trace_id, status=result.status)

    def query_full(self, trace_id: str) -> QueryResult:
        """Mint-specific query returning the reconstructed trace or the
        approximate trace (not just the status)."""
        return self.backend.query(trace_id)

    def stored_trace_ids(self) -> set[str]:
        return set(self.backend.storage.params)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _collector_for(self, node: str) -> MintCollector:
        collector = self._collectors.get(node)
        if collector is not None:
            return collector
        agent = MintAgent(
            node=node,
            config=self.config,
            extra_samplers=[factory() for factory in self._extra_factories],
        )
        collector = MintCollector(
            agent=agent,
            transport=self._transport,
            config=self.config,
        )
        self._collectors[node] = collector
        self.backend.register_collector(collector)
        return collector

    def _transport(self, report: Report) -> None:
        self.ledger.network.record(report.size_bytes(), self._now)
        self.backend.receive(report)

    def _charge_notify(self, node: str, nbytes: int) -> None:
        self.ledger.network.record(nbytes, self._now)

    def _sync_storage_meter(self, now: float) -> None:
        current = self.backend.storage_bytes()
        if current > self._last_storage:
            self.ledger.storage.record(current - self._last_storage, now)
            self._last_storage = current


class ShardedMintFramework(MintFramework):
    """Mint with the collection plane fanned across N backend shards.

    The agent/collector fleet is wired exactly as in
    :class:`MintFramework` (one agent per host — sharding must not
    perturb parsing or sampling), but reports land on a
    :class:`~repro.backend.sharded.ShardedBackend`, and every byte is
    charged twice: once on the deployment-wide ledger (comparable to
    the single-backend numbers) and once on the owning shard's ledger,
    giving the per-shard MB/min panels of the scaling experiments.
    """

    name = "Mint-Sharded"

    def __init__(
        self,
        num_shards: int = 2,
        config: MintConfig | None = None,
        extra_sampler_factories: list[SamplerFactory] | None = None,
        auto_warmup_traces: int = 100,
    ) -> None:
        self.num_shards = num_shards
        self.shard_ledgers = [OverheadLedger() for _ in range(num_shards)]
        self._last_shard_storage = [0] * num_shards
        super().__init__(
            config=config,
            extra_sampler_factories=extra_sampler_factories,
            auto_warmup_traces=auto_warmup_traces,
        )
        self.name = f"Mint-Sharded({num_shards})"

    def _make_backend(self) -> ShardedBackend:
        return ShardedBackend(
            num_shards=self.num_shards,
            bloom_buffer_bytes=self.config.bloom_buffer_bytes,
            bloom_fpp=self.config.bloom_fpp,
            notify_meter=self._charge_notify,
        )

    def _transport(self, report: Report) -> None:
        size = report.size_bytes()
        shard = self.backend.shard_for(report.node)
        self.shard_ledgers[shard].network.record(size, self._now)
        self.ledger.network.record(size, self._now)
        self.backend.receive(report)

    def _charge_notify(self, node: str, nbytes: int) -> None:
        # Control messages are egress of the shard owning the notified
        # host (that shard's frontend sends the ping).
        self.shard_ledgers[self.backend.shard_for(node)].network.record(
            nbytes, self._now
        )
        self.ledger.network.record(nbytes, self._now)

    def _sync_storage_meter(self, now: float) -> None:
        super()._sync_storage_meter(now)
        for i, shard in enumerate(self.backend.shards):
            current = shard.storage_bytes()
            if current > self._last_shard_storage[i]:
                self.shard_ledgers[i].storage.record(
                    current - self._last_shard_storage[i], now
                )
                self._last_shard_storage[i] = current

    def shard_summaries(self) -> list[ShardSummary]:
        """Per-shard storage tables from the backend."""
        return self.backend.shard_summaries()

    def shard_meter_rows(self) -> list[ShardLedgerRow]:
        """Per-shard network/storage totals (physical, not deduplicated).

        Summed shard storage can exceed the deployment ledger's figure:
        the gap is exactly the merge layer's replicated pattern bytes
        (``backend.merged.replicated_pattern_bytes()``).
        """
        return [
            ShardLedgerRow(
                shard=i,
                network_bytes=ledger.network.total_bytes,
                storage_bytes=ledger.storage.total_bytes,
            )
            for i, ledger in enumerate(self.shard_ledgers)
        ]
