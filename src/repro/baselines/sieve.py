"""Sieve: attention-based biased tail sampling over RRCF scores
(Huang et al., ICWS 2021), reproduced at the decision-rule level.

Sieve vectorises each trace, scores it with a Robust Random Cut Forest
(uncommon traces displace more, scoring higher), and keeps the traces
whose scores sit above a budget-derived threshold.  As a tail sampler,
every trace crosses the network; only sampled ones are stored.
"""

from __future__ import annotations

import hashlib
from collections import deque

from repro.baselines.base import TracingFramework
from repro.baselines.otel import stored_trace_result
from repro.baselines.rrcf import RobustRandomCutForest
from repro.model.encoding import encoded_size
from repro.model.span import SpanStatus
from repro.model.trace import Trace
from repro.query.result import QueryResult

_FEATURE_DIMS = 12


def trace_features(trace: Trace, dims: int = _FEATURE_DIMS) -> list[float]:
    """Vectorise a trace for anomaly scoring.

    Structural features (span count, depth, duration, error count) plus
    a hashed bag-of-operations, which is what lets RRCF separate rare
    execution paths from common ones.
    """
    features = [0.0] * dims
    features[0] = float(len(trace.spans))
    features[1] = float(trace.depth())
    features[2] = float(trace.duration)
    features[3] = float(
        sum(1 for s in trace.spans if s.status is SpanStatus.ERROR)
    )
    for span in trace.spans:
        digest = hashlib.md5(f"{span.service}:{span.name}".encode()).digest()
        slot = 4 + digest[0] % (dims - 4)
        features[slot] += 1.0
    return features


class Sieve(TracingFramework):
    """RRCF-scored tail sampler with a storage budget."""

    name = "Sieve"

    def __init__(
        self,
        budget_rate: float = 0.05,
        num_trees: int = 15,
        window_size: int = 256,
        warmup: int = 50,
        seed: int = 3,
    ) -> None:
        super().__init__()
        if not 0.0 < budget_rate <= 1.0:
            raise ValueError("budget_rate must be in (0, 1]")
        self.budget_rate = budget_rate
        self.warmup = warmup
        self._forest = RobustRandomCutForest(
            num_trees=num_trees, window_size=window_size, seed=seed
        )
        self._recent_scores: deque[float] = deque(maxlen=window_size)
        self._stored: dict[str, Trace] = {}
        self._seen = 0

    def process_trace(self, trace: Trace, now: float = 0.0) -> None:
        size = encoded_size(trace)
        # Tail sampling: the full trace always crosses the network.
        self.ledger.network.record(size, now)
        score = self._forest.score(trace_features(trace))
        self._seen += 1
        threshold = self._threshold()
        self._recent_scores.append(score)
        if self._seen <= self.warmup:
            return
        if score >= threshold:
            self.ledger.storage.record(size, now)
            self._stored[trace.trace_id] = trace

    def _threshold(self) -> float:
        """Score cutoff putting ~budget_rate of recent traffic above it."""
        if not self._recent_scores:
            return float("inf")
        ordered = sorted(self._recent_scores)
        rank = int((1.0 - self.budget_rate) * (len(ordered) - 1))
        return ordered[rank]

    def query(self, trace_id: str) -> QueryResult:
        return stored_trace_result(trace_id, self._stored)

    def stored_trace_ids(self) -> set[str]:
        return set(self._stored)
