"""repro: a full reproduction of Mint (ASPLOS 2025).

Mint is a cost-efficient distributed tracing framework that replaces
'1 or 0' trace sampling with a 'commonality + variability' paradigm:
traces are parsed into shared patterns (kept for *all* requests at very
low cost) and variable parameters (uploaded only for sampled requests),
so every trace remains at least approximately queryable.

Quick start::

    from repro import MintFramework
    from repro.workloads import build_onlineboutique, WorkloadDriver

    mint = MintFramework()
    driver = WorkloadDriver(build_onlineboutique(), seed=1)
    for now, trace in driver.traces(1000):
        mint.process_trace(trace, now)
    mint.finalize(0.0)
    result = mint.query(trace.trace_id)        # exact or approximate
    for hit in mint.execute(QuerySpec.where(
            candidates=[t.trace_id for t in traces], error_only=True)):
        ...                                    # streaming predicate query

Package map: :mod:`repro.model` (trace data model),
:mod:`repro.parsing` (the two-level commonality/variability parsers),
:mod:`repro.bloom` (Bloom filters), :mod:`repro.agent` /
:mod:`repro.backend` (the Mint runtime), :mod:`repro.framework` (the
deployable Mint framework), :mod:`repro.query` (the unified query
plane: specs, planner, cursors, the one result model),
:mod:`repro.baselines` (OT-Full/Head/Tail, Hindsight, Sieve),
:mod:`repro.compression`
(LogZip/LogReducer/CLP and Mint's lossless compressor),
:mod:`repro.rca` (MicroRank, TraceRCA, TraceAnomaly),
:mod:`repro.workloads` (OnlineBoutique, TrainTicket, Alibaba datasets),
:mod:`repro.sim` (meters, experiment and load-test harnesses),
:mod:`repro.transport` (the deployment plane), :mod:`repro.net` (the
simulated network plane: batching, chaos, reliable delivery).
"""

from repro.agent.config import MintConfig
from repro.baselines.hindsight import Hindsight
from repro.baselines.otel import OTFull, OTHead, OTTail
from repro.baselines.sieve import Sieve
from repro.framework import MintFramework
from repro.model.span import Span, SpanKind, SpanStatus
from repro.model.trace import SubTrace, Trace
from repro.query import QueryCursor, QueryResult, QuerySpec, QueryStatus
from repro.transport import Deployment

__version__ = "1.0.0"

__all__ = [
    "MintConfig",
    "MintFramework",
    "Deployment",
    "OTFull",
    "OTHead",
    "OTTail",
    "Hindsight",
    "Sieve",
    "QueryCursor",
    "QueryResult",
    "QuerySpec",
    "QueryStatus",
    "Span",
    "SpanKind",
    "SpanStatus",
    "Trace",
    "SubTrace",
    "__version__",
]
