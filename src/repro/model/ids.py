"""Deterministic generation of trace and span identifiers.

Real tracing SDKs generate random 128-bit trace ids and 64-bit span ids.
For a reproduction we want the same *shape* (fixed-width hex strings that
are unique within a run) while keeping every experiment deterministic, so
identifiers come from a seeded :class:`IdGenerator`.
"""

from __future__ import annotations

import random

TRACE_ID_BITS = 128
SPAN_ID_BITS = 64

_TRACE_ID_HEX_LEN = TRACE_ID_BITS // 4
_SPAN_ID_HEX_LEN = SPAN_ID_BITS // 4


class IdGenerator:
    """Produces unique, reproducible trace and span identifiers.

    Parameters
    ----------
    seed:
        Seed for the internal random number generator.  Two generators
        built with the same seed emit identical id sequences.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._seen_trace_ids: set[str] = set()

    def trace_id(self) -> str:
        """Return a new 32-hex-char trace id, unique for this generator."""
        while True:
            candidate = f"{self._rng.getrandbits(TRACE_ID_BITS):0{_TRACE_ID_HEX_LEN}x}"
            if candidate not in self._seen_trace_ids:
                self._seen_trace_ids.add(candidate)
                return candidate

    def span_id(self) -> str:
        """Return a new 16-hex-char span id.

        Span ids only need to be unique within a trace; collisions across
        traces are harmless, so no global dedup set is kept.
        """
        return f"{self._rng.getrandbits(SPAN_ID_BITS):0{_SPAN_ID_HEX_LEN}x}"


_DEFAULT_GENERATOR = IdGenerator(seed=0x5EED)


def new_trace_id() -> str:
    """Return a trace id from the module-level default generator."""
    return _DEFAULT_GENERATOR.trace_id()


def new_span_id() -> str:
    """Return a span id from the module-level default generator."""
    return _DEFAULT_GENERATOR.span_id()


def is_valid_trace_id(value: str) -> bool:
    """Check that ``value`` is a 32-character lowercase hex string."""
    if len(value) != _TRACE_ID_HEX_LEN:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return value == value.lower()


def is_valid_span_id(value: str) -> bool:
    """Check that ``value`` is a 16-character lowercase hex string."""
    if len(value) != _SPAN_ID_HEX_LEN:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return value == value.lower()
