"""Traces and sub-traces: tree-structured collections of spans.

A *trace* is the full end-to-end record of one request.  A *sub-trace*
(paper Section 3.3) is the fragment of a trace generated on a single
node: the Mint agent only sees spans local to its node, links them by
parent ids, and parses the resulting local tree.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.model.span import Span


@dataclass
class Trace:
    """A complete distributed trace: all spans sharing one trace id."""

    trace_id: str
    spans: list[Span] = field(default_factory=list)

    def __post_init__(self) -> None:
        for span in self.spans:
            if span.trace_id != self.trace_id:
                raise ValueError(
                    f"span {span.span_id} carries trace id {span.trace_id!r}, "
                    f"expected {self.trace_id!r}"
                )

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    @property
    def root(self) -> Span | None:
        """The entry span of the trace, or None for a fragment."""
        for span in self.spans:
            if span.is_root:
                return span
        return None

    @property
    def duration(self) -> float:
        """End-to-end duration: root duration, else the span envelope."""
        root = self.root
        if root is not None:
            return root.duration
        if not self.spans:
            return 0.0
        start = min(s.start_time for s in self.spans)
        end = max(s.end_time for s in self.spans)
        return end - start

    @property
    def services(self) -> set[str]:
        """All services that participated in the trace."""
        return {span.service for span in self.spans}

    @property
    def has_error(self) -> bool:
        """True when any span reported an error status."""
        from repro.model.span import SpanStatus

        return any(span.status is SpanStatus.ERROR for span in self.spans)

    def children_of(self, span_id: str | None) -> list[Span]:
        """Spans whose parent is ``span_id``, in start-time order."""
        kids = [s for s in self.spans if s.parent_id == span_id]
        return sorted(kids, key=lambda s: (s.start_time, s.span_id))

    def span_by_id(self, span_id: str) -> Span | None:
        """Look up a span by its id."""
        for span in self.spans:
            if span.span_id == span_id:
                return span
        return None

    def depth(self) -> int:
        """Height of the span tree (root = depth 1; empty trace = 0)."""
        if not self.spans:
            return 0
        by_parent: dict[str | None, list[Span]] = defaultdict(list)
        for span in self.spans:
            by_parent[span.parent_id].append(span)
        span_ids = {s.span_id for s in self.spans}
        roots = [s for s in self.spans if s.parent_id not in span_ids]

        def height(span: Span) -> int:
            kids = by_parent.get(span.span_id, [])
            if not kids:
                return 1
            return 1 + max(height(k) for k in kids)

        return max(height(r) for r in roots) if roots else 1

    def sub_traces(self) -> list["SubTrace"]:
        """Split this trace into per-node sub-traces (paper Section 3.3)."""
        by_node: dict[str, list[Span]] = defaultdict(list)
        for span in self.spans:
            by_node[span.node].append(span)
        return [
            SubTrace(trace_id=self.trace_id, node=node, spans=spans)
            for node, spans in sorted(by_node.items())
        ]


@dataclass
class SubTrace:
    """The fragment of one trace observed on a single node.

    The entry span of a sub-trace is the local span whose parent lives on
    another node (or has no parent at all); exit operations are the local
    spans that call out to other nodes.  These are what the backend uses
    for upstream/downstream stitching (paper Section 6.2).
    """

    trace_id: str
    node: str
    spans: list[Span] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    @property
    def local_span_ids(self) -> set[str]:
        """Ids of spans belonging to this fragment."""
        return {span.span_id for span in self.spans}

    def entry_spans(self) -> list[Span]:
        """Local spans whose parent is absent from this node."""
        local = self.local_span_ids
        return sorted(
            (s for s in self.spans if s.parent_id is None or s.parent_id not in local),
            key=lambda s: (s.start_time, s.span_id),
        )

    def local_children(self, span_id: str) -> list[Span]:
        """Local spans parented on ``span_id``, in deterministic order."""
        kids = [s for s in self.spans if s.parent_id == span_id]
        return sorted(kids, key=lambda s: (s.start_time, s.span_id))


def group_spans_by_trace(spans: Iterable[Span]) -> dict[str, Trace]:
    """Join spans into :class:`Trace` objects keyed by trace id.

    This is the backend-side join performed in stage 4 of the trace
    lifecycle (paper Section 2.2.1).
    """
    buckets: dict[str, list[Span]] = defaultdict(list)
    for span in spans:
        buckets[span.trace_id].append(span)
    return {
        trace_id: Trace(trace_id=trace_id, spans=bucket)
        for trace_id, bucket in buckets.items()
    }
