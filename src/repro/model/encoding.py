"""Wire encoding of spans and traces, with byte accounting.

The evaluation in the paper is fundamentally about *bytes*: network
overhead is the bytes an agent sends to the backend, storage overhead is
the bytes the backend persists.  This module defines a canonical
JSON-lines encoding (close to OTLP/JSON in structure and size) and a
single :func:`encoded_size` helper that all meters use, so every
framework in the comparison is charged with the same ruler.
"""

from __future__ import annotations

import json
from typing import Any

from repro.model.span import Span, SpanKind, SpanStatus
from repro.model.trace import Trace


def span_to_dict(span: Span) -> dict[str, Any]:
    """Convert a span to a plain dict in canonical field order."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "service": span.service,
        "kind": span.kind.value,
        "start_time": span.start_time,
        "duration": span.duration,
        "status": span.status.value,
        "node": span.node,
        "attributes": dict(sorted(span.attributes.items())),
    }


def span_from_dict(data: dict[str, Any]) -> Span:
    """Rebuild a span from :func:`span_to_dict` output."""
    return Span(
        trace_id=data["trace_id"],
        span_id=data["span_id"],
        parent_id=data.get("parent_id"),
        name=data["name"],
        service=data["service"],
        kind=SpanKind(data.get("kind", "server")),
        start_time=data.get("start_time", 0.0),
        duration=data.get("duration", 0.0),
        status=SpanStatus(data.get("status", "ok")),
        node=data.get("node", "node-0"),
        attributes=dict(data.get("attributes", {})),
    )


def encode_span(span: Span) -> str:
    """Encode one span as a compact JSON document."""
    return json.dumps(span_to_dict(span), separators=(",", ":"), sort_keys=False)


def decode_span(payload: str) -> Span:
    """Decode a span previously produced by :func:`encode_span`."""
    return span_from_dict(json.loads(payload))


def encode_trace(trace: Trace) -> str:
    """Encode a whole trace as JSON lines, one span per line."""
    return "\n".join(encode_span(span) for span in trace.spans)


def decode_trace(payload: str) -> Trace:
    """Decode a trace from :func:`encode_trace` output."""
    spans = [decode_span(line) for line in payload.splitlines() if line]
    if not spans:
        raise ValueError("cannot decode a trace from an empty payload")
    return Trace(trace_id=spans[0].trace_id, spans=spans)


def encoded_size(obj: Any) -> int:
    """Bytes of the canonical encoding of ``obj``.

    Accepts spans, traces, strings, bytes, or anything JSON-serialisable;
    this is the single size ruler used by every meter in the simulation.
    """
    if isinstance(obj, Span):
        return len(encode_span(obj).encode("utf-8"))
    if isinstance(obj, Trace):
        return len(encode_trace(obj).encode("utf-8"))
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    return len(json.dumps(obj, separators=(",", ":"), default=str).encode("utf-8"))
