"""Wire encoding of spans and traces, with byte accounting.

The evaluation in the paper is fundamentally about *bytes*: network
overhead is the bytes an agent sends to the backend, storage overhead is
the bytes the backend persists.  This module defines a canonical
JSON-lines encoding (close to OTLP/JSON in structure and size) and a
single :func:`encoded_size` helper that all meters use, so every
framework in the comparison is charged with the same ruler.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

from repro.model.span import Span, SpanKind, SpanStatus
from repro.model.trace import Trace


def span_to_dict(span: Span) -> dict[str, Any]:
    """Convert a span to a plain dict in canonical field order."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "service": span.service,
        "kind": span.kind.value,
        "start_time": span.start_time,
        "duration": span.duration,
        "status": span.status.value,
        "node": span.node,
        "attributes": dict(sorted(span.attributes.items())),
    }


def span_from_dict(data: dict[str, Any]) -> Span:
    """Rebuild a span from :func:`span_to_dict` output."""
    return Span(
        trace_id=data["trace_id"],
        span_id=data["span_id"],
        parent_id=data.get("parent_id"),
        name=data["name"],
        service=data["service"],
        kind=SpanKind(data.get("kind", "server")),
        start_time=data.get("start_time", 0.0),
        duration=data.get("duration", 0.0),
        status=SpanStatus(data.get("status", "ok")),
        node=data.get("node", "node-0"),
        attributes=dict(data.get("attributes", {})),
    )


def encode_span(span: Span) -> str:
    """Encode one span as a compact JSON document."""
    return json.dumps(span_to_dict(span), separators=(",", ":"), sort_keys=False)


def decode_span(payload: str) -> Span:
    """Decode a span previously produced by :func:`encode_span`."""
    return span_from_dict(json.loads(payload))


def encode_trace(trace: Trace) -> str:
    """Encode a whole trace as JSON lines, one span per line."""
    return "\n".join(encode_span(span) for span in trace.spans)


def decode_trace(payload: str) -> Trace:
    """Decode a trace from :func:`encode_trace` output."""
    spans = [decode_span(line) for line in payload.splitlines() if line]
    if not spans:
        raise ValueError("cannot decode a trace from an empty payload")
    return Trace(trace_id=spans[0].trace_id, spans=spans)


def encoded_size(obj: Any) -> int:
    """Bytes of the canonical encoding of ``obj``.

    Accepts spans, traces, strings, bytes, or anything JSON-serialisable;
    this is the single size ruler used by every meter in the simulation.
    """
    if isinstance(obj, Span):
        return len(encode_span(obj).encode("utf-8"))
    if isinstance(obj, Trace):
        return len(encode_trace(obj).encode("utf-8"))
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    return len(json.dumps(obj, separators=(",", ":"), default=str).encode("utf-8"))


# ----------------------------------------------------------------------
# Incremental size estimation (byte-identical to the JSON ruler)
# ----------------------------------------------------------------------
# The agent sizes every span's parameter record on ingest; rendering the
# full JSON text just to take its length dominates that path.  The
# helpers below compute the exact length json.dumps would produce
# without materialising the string.  They are an optimisation of the
# ruler, not a new ruler: `fast_encoded_size(x) == encoded_size(x)` for
# every JSON-serialisable value (enforced by tests).

# Characters that stop a string being "length + 2 quotes": anything
# json.dumps escapes (backslash, double quote, control chars) or
# non-ASCII (escaped to \uXXXX under the default ensure_ascii=True).
# Public so size-critical callers can inline the plain-string test.
JSON_ESCAPE_RE = re.compile(r'[^ -~]|["\\]')
_NEEDS_ESCAPE = JSON_ESCAPE_RE


def json_string_size(value: str) -> int:
    """Exact byte length of ``json.dumps(value)``."""
    if _NEEDS_ESCAPE.search(value) is None:
        return len(value) + 2
    return len(json.dumps(value))


def json_number_size(value: float) -> int:
    """Exact byte length of a JSON-encoded int or float."""
    if isinstance(value, float) and not math.isfinite(value):
        return len(json.dumps(value))  # NaN / Infinity spellings
    return len(repr(value))


def json_value_size(obj: Any) -> int:
    """Exact byte length of ``json.dumps(obj, separators=(",", ":"),
    default=str)`` — the size of ``obj`` as a *JSON value* (a string here
    is sized as its quoted, escaped JSON form)."""
    if obj is None:
        return 4
    cls = obj.__class__
    if cls is str:
        return json_string_size(obj)
    if cls is float or cls is int:
        return json_number_size(obj)
    if cls is bool:
        return 4 if obj else 5
    if cls is list or cls is tuple:
        if not obj:
            return 2
        return 1 + len(obj) + sum(json_value_size(item) for item in obj)
    if cls is dict:
        if not obj:
            return 2
        size = 1 + len(obj)  # open brace + one ,/} per entry
        for key, value in obj.items():
            if key.__class__ is not str:
                break  # json coerces exotic keys; use the real encoder
            size += json_string_size(key) + 1 + json_value_size(value)
        else:
            return size
    return len(json.dumps(obj, separators=(",", ":"), default=str))


def fast_encoded_size(obj: Any) -> int:
    """Exact :func:`encoded_size` of ``obj``, computed without rendering
    the encoded text where possible.

    Mirrors :func:`encoded_size`'s dispatch (bare strings and bytes are
    raw payloads, everything else is JSON) and falls back to the real
    encoder for anything outside the plain JSON types, so the result is
    byte-identical to :func:`encoded_size` by construction.
    """
    if isinstance(obj, str):
        return len(obj) if obj.isascii() else len(obj.encode("utf-8"))
    if isinstance(obj, (Span, Trace, bytes)):
        return encoded_size(obj)
    return json_value_size(obj)
