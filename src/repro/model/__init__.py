"""Trace data model: spans, traces, sub-traces and wire encoding.

This package is the substrate every other part of the reproduction builds
on.  It mirrors the OpenTelemetry data model described in the paper
(Section 2.2.3): every span has a *topology part* (trace/span/parent ids),
a *metadata part* (name, kind, timing) and an *attributes part*
(user-supplied key/value pairs such as SQL statements or thread names).
"""

from repro.model.encoding import decode_span, decode_trace, encode_span, encode_trace, encoded_size
from repro.model.ids import IdGenerator, new_span_id, new_trace_id
from repro.model.span import Span, SpanKind, SpanStatus
from repro.model.trace import SubTrace, Trace, group_spans_by_trace

__all__ = [
    "IdGenerator",
    "new_trace_id",
    "new_span_id",
    "Span",
    "SpanKind",
    "SpanStatus",
    "Trace",
    "SubTrace",
    "group_spans_by_trace",
    "encode_span",
    "decode_span",
    "encode_trace",
    "decode_trace",
    "encoded_size",
]
