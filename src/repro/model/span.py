"""The span: the unit of work recorded by a tracing framework.

Matches the three-part structure from the paper's Fig. 4:

* **topology part** — ``trace_id``, ``span_id``, ``parent_id``;
* **metadata part** — ``name``, ``service``, ``kind``, ``start_time``,
  ``duration``, ``status``;
* **attributes part** — free-form key/value pairs (strings or numbers)
  added by instrumentation, e.g. SQL text or thread names.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

AttributeValue = Union[str, int, float]


class SpanKind(enum.Enum):
    """Role of the span in an invocation, mirroring OpenTelemetry."""

    SERVER = "server"
    CLIENT = "client"
    INTERNAL = "internal"
    PRODUCER = "producer"
    CONSUMER = "consumer"


class SpanStatus(enum.Enum):
    """Outcome of the unit of work."""

    OK = "ok"
    ERROR = "error"
    UNSET = "unset"


@dataclass
class Span:
    """A single unit of work within a distributed trace.

    ``attributes`` maps attribute keys to string or numeric values.  The
    paper treats these two types differently during parsing (string
    values are templated, numeric values are bucketed), so values should
    be stored with their natural Python type rather than stringified.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    service: str
    kind: SpanKind = SpanKind.SERVER
    start_time: float = 0.0
    duration: float = 0.0
    status: SpanStatus = SpanStatus.OK
    node: str = "node-0"
    attributes: dict[str, AttributeValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.parent_id == "":
            self.parent_id = None
        if self.duration < 0:
            raise ValueError(f"span duration must be >= 0, got {self.duration}")

    @property
    def is_root(self) -> bool:
        """True when the span has no parent (entry point of the trace)."""
        return self.parent_id is None

    @property
    def end_time(self) -> float:
        """Completion timestamp of the span."""
        return self.start_time + self.duration

    def string_attributes(self) -> dict[str, str]:
        """Return only the string-valued attributes."""
        return {k: v for k, v in self.attributes.items() if isinstance(v, str)}

    def numeric_attributes(self) -> dict[str, float]:
        """Return only the numeric attributes (ints and floats)."""
        return {
            k: float(v)
            for k, v in self.attributes.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }

    def with_attributes(self, extra: dict[str, AttributeValue]) -> "Span":
        """Return a copy of this span with ``extra`` merged into attributes."""
        merged = dict(self.attributes)
        merged.update(extra)
        return Span(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            service=self.service,
            kind=self.kind,
            start_time=self.start_time,
            duration=self.duration,
            status=self.status,
            node=self.node,
            attributes=merged,
        )
