"""Topo pattern library with Bloom-filter metadata mounting.

Paper Section 3.3 / Fig. 8: each topo pattern carries a Bloom filter
holding the metadata (trace ids) of every trace matched to it.  Filters
are pre-sized to a fixed buffer (default 4 KB); when one fills up it is
handed to the flush callback (the collector reports it immediately,
paper Section 4.2) and replaced with a fresh filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.bloom.bloom_filter import BloomFilter, sized_for_bytes
from repro.parsing.trace_parser import TopoPattern, TopoPatternLibrary


@dataclass
class FlushedBloom:
    """A full Bloom filter detached from its pattern, ready to report."""

    topo_pattern_id: str
    node: str
    payload: bytes
    inserted: int


class MountedTopoLibrary:
    """Combines a :class:`TopoPatternLibrary` with per-pattern filters."""

    def __init__(
        self,
        node: str,
        bloom_buffer_bytes: int = 4096,
        bloom_fpp: float = 0.01,
        on_flush: Callable[[FlushedBloom], None] | None = None,
        library: TopoPatternLibrary | None = None,
    ) -> None:
        self.node = node
        self.bloom_buffer_bytes = bloom_buffer_bytes
        self.bloom_fpp = bloom_fpp
        self.library = library if library is not None else TopoPatternLibrary()
        self._filters: dict[str, BloomFilter] = {}
        self._on_flush = on_flush
        self._flushed_count = 0

    def __len__(self) -> int:
        return len(self.library)

    @property
    def flushed_count(self) -> int:
        """Filters reported-and-reset since construction."""
        return self._flushed_count

    @property
    def flush_callback(self) -> Callable[[FlushedBloom], None] | None:
        """The callback receiving full (or drained) filters, if any."""
        return self._on_flush

    @flush_callback.setter
    def flush_callback(self, callback: Callable[[FlushedBloom], None] | None) -> None:
        self._on_flush = callback

    def register_and_mount(self, pattern: TopoPattern, trace_id: str) -> str:
        """Register ``pattern`` (exact match or insert) and mount the
        trace's metadata on its Bloom filter."""
        pattern_id = self.library.register(pattern)
        filt = self._filters.get(pattern_id)
        if filt is None:
            filt = self._new_filter()
            self._filters[pattern_id] = filt
        filt.add(trace_id)
        if filt.is_full:
            self._flush(pattern_id, filt)
            self._filters[pattern_id] = self._new_filter()
        return pattern_id

    def might_contain(self, pattern_id: str, trace_id: str) -> bool:
        """Agent-side membership check on the *active* filter only.

        Flushed filters live on the backend; this is used by tests and
        by the collector's local pre-checks.
        """
        filt = self._filters.get(pattern_id)
        return filt is not None and trace_id in filt

    def active_filters(self) -> dict[str, BloomFilter]:
        """Current (unflushed) filter per pattern id."""
        return dict(self._filters)

    def drain_active_filters(self) -> list[FlushedBloom]:
        """Flush every non-empty active filter (periodic report path)."""
        drained: list[FlushedBloom] = []
        for pattern_id, filt in list(self._filters.items()):
            if len(filt) == 0:
                continue
            drained.append(
                FlushedBloom(
                    topo_pattern_id=pattern_id,
                    node=self.node,
                    payload=filt.to_bytes(),
                    inserted=len(filt),
                )
            )
            self._filters[pattern_id] = self._new_filter()
        return drained

    def drain_and_notify(self) -> list[FlushedBloom]:
        """Drain every non-empty active filter and hand each to the
        flush callback (when set), so mounted metadata is reported
        rather than lost — the rebuild/shutdown path."""
        drained = self.drain_active_filters()
        if self._on_flush is not None:
            for flushed in drained:
                self._on_flush(flushed)
        return drained

    def _new_filter(self) -> BloomFilter:
        return sized_for_bytes(self.bloom_buffer_bytes, self.bloom_fpp)

    def _flush(self, pattern_id: str, filt: BloomFilter) -> None:
        self._flushed_count += 1
        if self._on_flush is not None:
            self._on_flush(
                FlushedBloom(
                    topo_pattern_id=pattern_id,
                    node=self.node,
                    payload=filt.to_bytes(),
                    inserted=len(filt),
                )
            )
