"""The Params Buffer: bounded FIFO storage for variable parameters.

Paper Section 4.1: *"Mint-agent reserves a fixed-size buffer (default
4 MB) in shared memory to temporarily store trace parameters.  Params
Buffer operates as a FIFO queue, with parameters from the same trace ID
grouped into one block.  Newly generated trace parameters blocks are
added to the end of the queue.  When the buffer is full, the block at
the front of the queue is popped out."*
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.parsing.span_parser import ParsedSpan


@dataclass
class ParamsBlock:
    """All buffered parameter records for one trace id."""

    trace_id: str
    spans: list[ParsedSpan] = field(default_factory=list)
    size_bytes: int = 0

    def add(self, parsed: ParsedSpan) -> int:
        """Append one span's parameters; returns the bytes added."""
        added = parsed.params_size_bytes()
        self.spans.append(parsed)
        self.size_bytes += added
        return added


class ParamsBuffer:
    """FIFO queue of per-trace parameter blocks with a byte budget."""

    def __init__(self, capacity_bytes: int = 4 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._blocks: OrderedDict[str, ParamsBlock] = OrderedDict()
        self._used_bytes = 0
        self._evicted_blocks = 0
        self._evicted_bytes = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._blocks

    @property
    def used_bytes(self) -> int:
        """Bytes currently buffered."""
        return self._used_bytes

    @property
    def evicted_blocks(self) -> int:
        """Blocks dropped from the front since construction."""
        return self._evicted_blocks

    @property
    def evicted_bytes(self) -> int:
        """Bytes dropped from the front since construction."""
        return self._evicted_bytes

    def add(self, parsed: ParsedSpan) -> None:
        """Buffer one span's parameters in its trace's block.

        A new block joins the queue tail; appending to an existing block
        does not refresh its queue position (FIFO, not LRU).
        """
        block = self._blocks.get(parsed.trace_id)
        if block is None:
            block = ParamsBlock(trace_id=parsed.trace_id)
            self._blocks[parsed.trace_id] = block
        # Inlined ParamsBlock.add: this runs once per ingested span.
        added = parsed.params_size_bytes()
        block.spans.append(parsed)
        block.size_bytes += added
        used = self._used_bytes + added
        self._used_bytes = used
        if used > self.capacity_bytes:
            self._evict_until_fits()

    def get(self, trace_id: str) -> ParamsBlock | None:
        """Block for ``trace_id``, or None when absent/evicted."""
        return self._blocks.get(trace_id)

    def pop(self, trace_id: str) -> ParamsBlock | None:
        """Remove and return the block for ``trace_id`` (upload path)."""
        block = self._blocks.pop(trace_id, None)
        if block is not None:
            self._used_bytes -= block.size_bytes
        return block

    def trace_ids(self) -> list[str]:
        """Buffered trace ids in FIFO (oldest-first) order."""
        return list(self._blocks)

    def blocks(self) -> list[ParamsBlock]:
        """All blocks in FIFO order (oldest first)."""
        return list(self._blocks.values())

    def _evict_until_fits(self) -> None:
        while self._used_bytes > self.capacity_bytes and self._blocks:
            _, block = self._blocks.popitem(last=False)
            self._used_bytes -= block.size_bytes
            self._evicted_blocks += 1
            self._evicted_bytes += block.size_bytes
