"""The Mint agent: per-node parsing, mounting, buffering and sampling.

Ties together the walkthrough of paper Fig. 5: raw spans are redirected
to the Span Parser (step 2), grouped into sub-traces for the Trace
Parser (step 3), their metadata mounted on topo patterns via Bloom
filters, parameters buffered (step 4), and the two samplers consulted
(step 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.agent.config import MintConfig
from repro.agent.params_buffer import ParamsBuffer
from repro.agent.pattern_library import FlushedBloom, MountedTopoLibrary
from repro.agent.samplers import EdgeCaseSampler, Sampler, SymptomSampler
from repro.model.span import Span
from repro.model.trace import SubTrace
from repro.parsing.span_parser import SpanParser, SpanPattern
from repro.parsing.trace_parser import ParsedSubTrace, TraceParser, extract_topo_pattern


@dataclass
class IngestResult:
    """Outcome of processing one sub-trace on the agent."""

    trace_id: str
    node: str
    topo_pattern_id: str
    sampled: bool
    fired_samplers: list[str] = field(default_factory=list)
    parsed: ParsedSubTrace | None = None


def _parsed_span_order(parsed) -> tuple[float, str]:
    return (parsed.start_time, parsed.span_id)


class MintAgent:
    """One Mint agent instance, owning the per-node state."""

    def __init__(
        self,
        node: str,
        config: MintConfig | None = None,
        on_bloom_flush: Callable[[FlushedBloom], None] | None = None,
        extra_samplers: list[Sampler] | None = None,
    ) -> None:
        self.node = node
        self.config = config or MintConfig()
        self.span_parser = SpanParser(
            similarity_threshold=self.config.similarity_threshold,
            alpha=self.config.alpha,
        )
        self.trace_parser = TraceParser(self.span_parser)
        # The mounted library wraps the trace parser's library so the
        # edge-case sampler sees the same match counts.
        self.mounted_library = MountedTopoLibrary(
            node=node,
            bloom_buffer_bytes=self.config.bloom_buffer_bytes,
            bloom_fpp=self.config.bloom_fpp,
            on_flush=on_bloom_flush,
            library=self.trace_parser.library,
        )
        self.params_buffer = ParamsBuffer(self.config.params_buffer_bytes)
        self.symptom_sampler = SymptomSampler(
            abnormal_words=self.config.abnormal_words,
            percentile=self.config.symptom_percentile,
            window=self.config.symptom_window,
        )
        self.edge_case_sampler = EdgeCaseSampler(
            library=self.trace_parser.library,
            base_rate=self.config.edge_case_base_rate,
            seed=self.config.sampler_seed,
        )
        self.extra_samplers = list(extra_samplers or [])
        self._warmed_up = False

    @property
    def is_warmed_up(self) -> bool:
        """True once the offline warm-up stage has run."""
        return self._warmed_up

    def warm_up(self, spans: Iterable[Span]) -> None:
        """Offline stage: build attribute parsers from sampled raw spans.

        At most ``config.warmup_sample_size`` spans are used (the paper
        samples m = 5,000).
        """
        sample = list(spans)[: self.config.warmup_sample_size]
        self.span_parser.warm_up(sample)
        self._warmed_up = True

    def ingest(self, sub_trace: SubTrace) -> IngestResult:
        """Process one sub-trace through the full agent pipeline."""
        return self._ingest_one(sub_trace, self.span_parser.parse)

    def ingest_many(self, sub_traces: Iterable[SubTrace]) -> list[IngestResult]:
        """Batch ingest: identical results to looped :meth:`ingest`.

        One pipeline setup (bound-method and buffer lookups) is paid per
        batch instead of per sub-trace; the per-span costs then ride the
        parser's interning and value caches, which a batch of warm
        traffic hits almost exclusively.
        """
        parse = self.span_parser.parse
        ingest_one = self._ingest_one
        return [ingest_one(sub_trace, parse) for sub_trace in sub_traces]

    def _ingest_one(
        self,
        sub_trace: SubTrace,
        parse: Callable[..., object],
    ) -> IngestResult:
        if sub_trace.node != self.node:
            raise ValueError(
                f"sub-trace for node {sub_trace.node!r} sent to agent {self.node!r}"
            )
        # Ranges are observed only after the sampling decision (below):
        # a symptomatic trace's outlier values are uploaded exactly and
        # must not distort the pattern's common-case display ranges.
        spans = sub_trace.spans
        if len(spans) == 1:
            only = parse(spans[0], observe_ranges=False)
            parsed_spans = {spans[0].span_id: only}
            ordered = [only]
        else:
            parsed_spans = {
                span.span_id: parse(span, observe_ranges=False) for span in spans
            }
            ordered = sorted(parsed_spans.values(), key=_parsed_span_order)
        topo_pattern = extract_topo_pattern(sub_trace, parsed_spans)
        pattern_id = self.mounted_library.register_and_mount(
            topo_pattern, sub_trace.trace_id
        )
        # Direct construction: one ParsedSubTrace per sub-trace on the
        # hot path; the dataclass __init__ shows up in profiles.  Field
        # semantics (repr/eq) are untouched.
        parsed = ParsedSubTrace.__new__(ParsedSubTrace)
        parsed.__dict__ = {
            "trace_id": sub_trace.trace_id,
            "node": sub_trace.node,
            "topo_pattern_id": pattern_id,
            "parsed_spans": ordered,
        }
        buffer_add = self.params_buffer.add
        for span in parsed.parsed_spans:
            buffer_add(span)
        fired: list[str] | None = None
        if self.symptom_sampler.observe(sub_trace, parsed):
            fired = ["symptom"]
        if self.edge_case_sampler.observe(sub_trace, parsed):
            if fired is None:
                fired = ["edge-case"]
            else:
                fired.append("edge-case")
        for sampler in self.extra_samplers:
            if sampler.observe(sub_trace, parsed):
                if fired is None:
                    fired = [type(sampler).__name__]
                else:
                    fired.append(type(sampler).__name__)
        if fired is None:
            library = self.span_parser.library
            observe = library.observe_numeric
            for span in parsed.parsed_spans:
                span_params = span.params
                size_plan = span.__dict__.get("_size_plan")
                if size_plan is not None:
                    # Replayed span: the plan's variable spec already
                    # names exactly the numeric parameters.
                    span_pattern_id = span.pattern_id
                    for key, is_list in size_plan[1]:
                        if not is_list:
                            observe(span_pattern_id, key, span_params[key])
                else:
                    for key, param in span_params.items():
                        if not isinstance(param, list):
                            observe(span.pattern_id, key, float(param))
        result = IngestResult.__new__(IngestResult)
        result.__dict__ = {
            "trace_id": sub_trace.trace_id,
            "node": self.node,
            "topo_pattern_id": pattern_id,
            "sampled": fired is not None,
            "fired_samplers": fired if fired is not None else [],
            "parsed": parsed,
        }
        return result

    def reconstruct_patterns(self) -> None:
        """The paper's 'reconstruct interface' (Section 4.1).

        When the system changes (new releases, changed SQL, renamed
        operations), previously learned patterns go stale; developers
        trigger a rebuild.  The parsers and libraries are replaced with
        fresh ones (subsequent traffic re-warms them); Bloom filters are
        drained first so already-mounted metadata is not lost.
        """
        self.mounted_library.drain_and_notify()
        self.span_parser = SpanParser(
            similarity_threshold=self.config.similarity_threshold,
            alpha=self.config.alpha,
        )
        self.trace_parser = TraceParser(self.span_parser)
        self.mounted_library = MountedTopoLibrary(
            node=self.node,
            bloom_buffer_bytes=self.config.bloom_buffer_bytes,
            bloom_fpp=self.config.bloom_fpp,
            on_flush=self.mounted_library.flush_callback,
            library=self.trace_parser.library,
        )
        self.edge_case_sampler = EdgeCaseSampler(
            library=self.trace_parser.library,
            base_rate=self.config.edge_case_base_rate,
            seed=self.config.sampler_seed,
        )
        self._warmed_up = False

    def span_patterns(self) -> list[SpanPattern]:
        """All span patterns known to this agent."""
        return self.span_parser.library.patterns()

    def topo_library(self):
        """The topo pattern library (shared with the edge-case sampler)."""
        return self.trace_parser.library
