"""The Mint collector: reporting policy between agent and backend.

Paper Section 4.2: the collector reports the Pattern Library
periodically (default every minute), reports Bloom filters immediately
when they fill, and uploads variable parameters only for traces marked
sampled — including traces marked sampled by *other* nodes, which the
backend requests via :meth:`MintCollector.request_params`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.agent.agent import IngestResult, MintAgent
from repro.agent.config import MintConfig
from repro.agent.pattern_library import FlushedBloom
from repro.agent.reports import BloomReport, ParamsReport, PatternLibraryReport
from repro.model.trace import SubTrace
from repro.transport.wire import ReportSender

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transport.transport import Transport


class MintCollector:
    """Drives one agent's uploads over a transport to the backend.

    ``transport`` is either a deployment-plane
    :class:`~repro.transport.transport.Transport` (reports go through
    ``deliver``, metered at the wire) or any bare report callable such
    as ``backend.receive`` — handy for direct-wired tests.
    """

    def __init__(
        self,
        agent: MintAgent,
        transport: Union["Transport", ReportSender],
        config: MintConfig | None = None,
    ) -> None:
        self.agent = agent
        self.transport = transport
        deliver = getattr(transport, "deliver", None)
        if callable(deliver):
            self._send: ReportSender = deliver
        elif callable(transport):
            self._send = transport
        else:
            raise TypeError(
                "transport must be a Transport (with a deliver method) or a "
                f"bare report callable, got {type(transport).__name__!r}"
            )
        self.config = config or agent.config
        self._reported_span_pattern_ids: set[str] = set()
        self._reported_topo_pattern_ids: set[str] = set()
        self._sampled_trace_ids: set[str] = set()
        self._uploaded_blocks: set[tuple[str, int]] = set()
        self._last_pattern_report: float | None = None
        # Bloom filters flush straight through the agent callback.
        agent.mounted_library.flush_callback = self._send_bloom

    @property
    def node(self) -> str:
        """Node this collector serves."""
        return self.agent.node

    @property
    def sampled_trace_ids(self) -> set[str]:
        """Traces this collector knows to be sampled."""
        return set(self._sampled_trace_ids)

    def process(self, sub_trace: SubTrace, now: float) -> IngestResult:
        """Run one sub-trace through the agent, then apply upload policy."""
        result = self.agent.ingest(sub_trace)
        if result.sampled:
            self._sampled_trace_ids.add(result.trace_id)
        if result.trace_id in self._sampled_trace_ids:
            self._upload_params(result.trace_id)
        self.tick(now)
        return result

    def tick(self, now: float) -> None:
        """Periodic duties: pattern library reports on the configured
        interval, plus catch-up parameter uploads for sampled traces."""
        if (
            self._last_pattern_report is None
            or now - self._last_pattern_report >= self.config.pattern_report_interval_s
        ):
            self._send_pattern_report(now)

    def flush(self, now: float) -> None:
        """End-of-run flush: patterns, all active Bloom filters, and any
        parameters still owed for sampled traces."""
        self._send_pattern_report(now)
        for flushed in self.agent.mounted_library.drain_active_filters():
            self._send_bloom(flushed)
        for trace_id in sorted(self._sampled_trace_ids):
            self._upload_params(trace_id)

    def mark_sampled(self, trace_id: str) -> None:
        """Backend-initiated notification: some node sampled this trace;
        upload our buffered parameters for it (paper step 6)."""
        self._sampled_trace_ids.add(trace_id)
        self._upload_params(trace_id)

    def request_params(self, trace_id: str) -> bool:
        """Upload parameters for ``trace_id`` if buffered; True on hit.

        The buffer must be checked before marking: a successful upload
        frees the block, so checking afterwards would always miss.
        """
        buffered = self.agent.params_buffer.get(trace_id) is not None
        self.mark_sampled(trace_id)
        return buffered

    def _send_pattern_report(self, now: float) -> None:
        library = self.agent.span_parser.library
        span_patterns = [
            library.pattern_dict(p.pattern_id)
            for p in library.patterns()
            if p.pattern_id not in self._reported_span_pattern_ids
        ]
        topo_patterns = [
            p.to_dict()
            for p in self.agent.trace_parser.library.patterns()
            if p.pattern_id not in self._reported_topo_pattern_ids
        ]
        self._last_pattern_report = now
        if not span_patterns and not topo_patterns:
            return
        report = PatternLibraryReport(
            node=self.node, span_patterns=span_patterns, topo_patterns=topo_patterns
        )
        self._reported_span_pattern_ids.update(p["pattern_id"] for p in span_patterns)
        self._reported_topo_pattern_ids.update(p["pattern_id"] for p in topo_patterns)
        self._send(report)

    def _send_bloom(self, flushed: FlushedBloom) -> None:
        self._send(
            BloomReport(
                node=flushed.node,
                topo_pattern_id=flushed.topo_pattern_id,
                payload=flushed.payload,
                inserted=flushed.inserted,
            )
        )

    def _upload_params(self, trace_id: str) -> None:
        block = self.agent.params_buffer.get(trace_id)
        if block is None:
            return
        key = (trace_id, len(block.spans))
        if key in self._uploaded_blocks:
            return
        library = self.agent.span_parser.library
        records = [
            span.compact_record(library.get(span.pattern_id)) for span in block.spans
        ]
        self._send(ParamsReport(node=self.node, trace_id=trace_id, records=records))
        self._uploaded_blocks.add(key)
        # The block has been persisted; free the buffer space.
        self.agent.params_buffer.pop(trace_id)
