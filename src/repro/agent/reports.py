"""Messages flowing from collectors to the backend, with byte costs.

Every report knows its wire size; the simulation's network meter charges
exactly these sizes, which is how Fig. 11's network-overhead comparison
is reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.model.encoding import encoded_size


@dataclass
class PatternLibraryReport:
    """Periodic upload of span + topo patterns (paper step 4).

    Only patterns not previously reported are included; the pattern
    libraries converge once the system is stable, so these reports
    shrink to nothing.
    """

    node: str
    span_patterns: list[dict[str, Any]] = field(default_factory=list)
    topo_patterns: list[dict[str, Any]] = field(default_factory=list)

    def size_bytes(self) -> int:
        """Wire size of the report."""
        return encoded_size(
            {
                "node": self.node,
                "span_patterns": self.span_patterns,
                "topo_patterns": self.topo_patterns,
            }
        )

    @property
    def is_empty(self) -> bool:
        """True when there is nothing new to upload."""
        return not self.span_patterns and not self.topo_patterns


@dataclass
class BloomReport:
    """One flushed Bloom filter (sent when full, or at period end)."""

    node: str
    topo_pattern_id: str
    payload: bytes
    inserted: int

    def size_bytes(self) -> int:
        """Wire size: the bit array plus a small header."""
        header = encoded_size(
            {
                "node": self.node,
                "topo_pattern_id": self.topo_pattern_id,
                "inserted": self.inserted,
            }
        )
        return header + len(self.payload)


@dataclass
class ParamsReport:
    """Variable parameters of one sampled trace from one node (step 6).

    ``records`` use the compact positional format of
    :meth:`repro.parsing.span_parser.ParsedSpan.compact_record`.
    """

    node: str
    trace_id: str
    records: list[list[Any]] = field(default_factory=list)

    def size_bytes(self) -> int:
        """Wire size of the parameter upload."""
        return encoded_size(
            {"node": self.node, "trace_id": self.trace_id, "records": self.records}
        )


Report = PatternLibraryReport | BloomReport | ParamsReport
