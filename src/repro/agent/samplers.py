"""Samplers deciding which traces get their parameters uploaded.

Paper Section 4.2 defines two samplers purpose-built for the
'commonality + variability' paradigm:

* :class:`SymptomSampler` — watches the Params Buffer for anomalies:
  numeric parameters beyond the P95 of their attribute, or string
  parameters containing user-defined abnormal words;
* :class:`EdgeCaseSampler` — watches the Topo Pattern Library and
  boosts the sampling probability of rare execution paths.

Mint also remains compatible with conventional rules, provided here as
:class:`HeadSampler` and :class:`TailSampler`.
"""

from __future__ import annotations

import random
import re
from bisect import bisect_left, insort
from collections import deque
from typing import Callable, Protocol

from repro.model.trace import SubTrace
from repro.parsing.span_parser import DURATION_KEY
from repro.parsing.trace_parser import ParsedSubTrace, TopoPatternLibrary


class Sampler(Protocol):
    """Decision interface: should this trace's parameters be uploaded?"""

    def observe(self, sub_trace: SubTrace, parsed: ParsedSubTrace) -> bool:
        """Inspect one parsed sub-trace; True marks the trace sampled."""
        ...


class SymptomSampler:
    """Marks traces with anomalous parameter values as sampled.

    For numeric parameters the sampler keeps a sliding window per
    attribute key and flags values above the configured percentile
    (default P95).  For string parameters it flags values containing any
    abnormal word (case-insensitive substring match), with the word list
    being user-defined per the paper.
    """

    def __init__(
        self,
        abnormal_words: tuple[str, ...] = (),
        percentile: float = 95.0,
        window: int = 512,
        min_observations: int = 20,
        numeric_keys: tuple[str, ...] | None = None,
    ) -> None:
        """``numeric_keys`` restricts the outlier check to specific
        parameter keys (default: span durations only — the paper's
        example of "unusually large duration values"); pass ``None``
        explicitly wrapped in a tuple-free call site to widen it."""
        if not 0.0 < percentile < 100.0:
            raise ValueError("percentile must be in (0, 100)")
        self.percentile = percentile
        self.min_observations = min_observations
        self.numeric_keys = (
            numeric_keys if numeric_keys is not None else (DURATION_KEY,)
        )
        self._words = tuple(w.lower() for w in abnormal_words)
        self._word_patterns = [
            re.compile(rf"(?<![0-9a-z]){re.escape(w.lower())}(?![0-9a-z])")
            for w in abnormal_words
        ]
        # One alternation regex answers "any abnormal word present?" in a
        # single C-level scan; matches iff some per-word pattern matches.
        self._word_regex = (
            re.compile(
                r"(?<![0-9a-z])(?:"
                + "|".join(re.escape(w.lower()) for w in abnormal_words)
                + r")(?![0-9a-z])"
            )
            if abnormal_words
            else None
        )
        self._windows: dict = {}
        # Window state per key: [deque, sorted mirror, running sum].
        # The sorted mirror makes the percentile a single index instead
        # of a per-observation sort; the running sum makes the mean one
        # division.  The running sum equals the freshly-computed sum
        # exactly until the window first wraps; after that it can
        # differ in the last ulp, which is billions of times smaller
        # than any outlier margin.
        self._window_state: dict = {}
        self._window_size = window

    def observe(self, sub_trace: SubTrace, parsed: ParsedSubTrace) -> bool:
        sampled = False
        check_words = self._word_regex is not None
        numeric_keys = self.numeric_keys
        duration_only = numeric_keys == (DURATION_KEY,)
        for span in parsed.parsed_spans:
            params = span.params
            # Replayed spans carry the exact set of list-valued params;
            # the scan then touches only the params that can matter.
            list_keys = (
                span.__dict__.get("_param_lists") if duration_only else None
            )
            if list_keys is not None:
                if check_words:
                    for key in list_keys:
                        parts = params[key]
                        if parts and self._has_abnormal_word(parts):
                            sampled = True
                if self._is_numeric_outlier(
                    (span.pattern_id, DURATION_KEY), params[DURATION_KEY]
                ):
                    sampled = True
                continue
            for key, param in params.items():
                if param.__class__ is list:
                    if check_words and param and self._has_abnormal_word(param):
                        sampled = True
                elif key in numeric_keys and self._is_numeric_outlier(
                    # Windows are kept per (pattern, key): "unusually
                    # large" only makes sense against spans doing the
                    # same unit of work, not a mixed population.
                    (span.pattern_id, key),
                    float(param),
                ):
                    sampled = True
        return sampled

    def _has_abnormal_word(self, parts: list[str]) -> bool:
        """Word-boundary match so random hex ids containing e.g. '500'
        as a substring do not trip the sampler."""
        regex = self._word_regex
        if regex is None:
            return False
        search = regex.search
        for part in parts:
            if part and search(part.lower()):
                return True
        return False

    def _is_numeric_outlier(self, key: tuple[str, str] | str, value: float) -> bool:
        """True for genuinely anomalous values.

        Beyond the paper's P95 rule, the value must also exceed twice
        the window mean — under steady load roughly 5 % of values sit
        above P95 by construction, and marking all of them would sample
        far more than the anomalous traffic the rule is after.

        The window keeps a sorted mirror so the percentile threshold is
        one list index per observation; decisions are identical to
        re-sorting the window every time (same multiset, same
        nearest-rank formula, same freshly-summed mean).
        """
        state = self._window_state.get(key)
        if state is None:
            window: deque[float] = deque()
            state = [window, [], 0.0]
            self._window_state[key] = state
            self._windows[key] = window
            ordered: list[float] = state[1]
        else:
            window, ordered, _ = state
        count = len(window)
        outlier = False
        if count >= self.min_observations:
            rank = max(0, min(count - 1, int(round(self.percentile / 100.0 * count)) - 1))
            threshold = ordered[rank]
            mean = state[2] / count
            outlier = value > threshold and value > 2.0 * mean
        if count == self._window_size:
            oldest = window.popleft()
            del ordered[bisect_left(ordered, oldest)]
            state[2] -= oldest
        window.append(value)
        insort(ordered, value)
        state[2] += value
        return outlier


class EdgeCaseSampler:
    """Boosts sampling of traces following rare topology patterns.

    The probability of sampling a trace matched to pattern ``p`` scales
    with the inverse of the pattern's observed share: common patterns
    stay near ``base_rate`` and the rarest patterns approach 1.
    """

    def __init__(
        self,
        library: TopoPatternLibrary,
        base_rate: float = 0.02,
        seed: int = 7,
    ) -> None:
        if not 0.0 <= base_rate <= 1.0:
            raise ValueError("base_rate must be in [0, 1]")
        self.library = library
        self.base_rate = base_rate
        self._rng = random.Random(seed)

    def sampling_probability(self, topo_pattern_id: str) -> float:
        """Probability assigned to a trace of the given pattern.

        Inverse-share weighting: a pattern carrying a ``1/n``-th share
        of traffic (``n`` = library size, the uniform share) is sampled
        at ``base_rate``; rarer patterns are boosted proportionally and
        the very first occurrences of any new path are always sampled.
        Common patterns decay well below ``base_rate`` so steady-state
        edge-case traffic stays a small fraction of requests.
        """
        total = self.library.total_matches()
        count = self.library.match_count(topo_pattern_id)
        if total <= 0 or count <= 0:
            return 1.0  # Never-seen pattern: always an edge case.
        if count <= 2:
            return 1.0  # First occurrences of a new path always sampled.
        share = count / total
        uniform_share = 1.0 / max(len(self.library), 1)
        boosted = self.base_rate * uniform_share / max(share, 1e-9)
        return min(1.0, boosted)

    def observe(self, sub_trace: SubTrace, parsed: ParsedSubTrace) -> bool:
        return self._rng.random() < self.sampling_probability(parsed.topo_pattern_id)


class HeadSampler:
    """Conventional head sampling: decide at trace start, by trace id.

    The decision hashes the trace id so every agent that sees the trace
    agrees without coordination (equivalent to propagating the sampled
    flag in the context).
    """

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self._seed = seed

    def decide(self, trace_id: str) -> bool:
        """Deterministic per-trace-id decision."""
        rng = random.Random(f"{self._seed}:{trace_id}")
        return rng.random() < self.rate

    def observe(self, sub_trace: SubTrace, parsed: ParsedSubTrace) -> bool:
        return self.decide(sub_trace.trace_id)


class TailSampler:
    """Conventional tail sampling: a user-defined predicate over the
    (sub-)trace, evaluated after the fact.

    The paper's evaluation configures tail sampling to keep traces
    tagged ``is_abnormal``; that predicate is the default here.
    """

    def __init__(
        self, predicate: Callable[[SubTrace], bool] | None = None
    ) -> None:
        self.predicate = predicate or _default_abnormal_predicate

    def observe(self, sub_trace: SubTrace, parsed: ParsedSubTrace) -> bool:
        return self.predicate(sub_trace)


def _default_abnormal_predicate(sub_trace: SubTrace) -> bool:
    for span in sub_trace:
        if span.attributes.get("is_abnormal") in (True, "true", 1):
            return True
    return False


def _percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile over a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(pct / 100.0 * len(ordered))) - 1))
    return ordered[rank]
