"""Configuration shared by the Mint agent, collector and backend.

Defaults follow the paper's implementation notes: LCS similarity
threshold 0.8, bucketing precision alpha 0.5, 4 KB Bloom filter buffers
at fpp 0.01, a 4 MB Params Buffer, 60 s pattern report interval, and a
5,000-span offline warm-up sample.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_ABNORMAL_WORDS = (
    "error",
    "exception",
    "timeout",
    "fail",
    "failed",
    "refused",
    "500",
    "502",
    "503",
)


@dataclass(frozen=True)
class MintConfig:
    """Tunable parameters of a Mint deployment."""

    similarity_threshold: float = 0.8
    alpha: float = 0.5
    bloom_buffer_bytes: int = 4096
    bloom_fpp: float = 0.01
    params_buffer_bytes: int = 4 * 1024 * 1024
    pattern_report_interval_s: float = 60.0
    warmup_sample_size: int = 5000
    abnormal_words: tuple[str, ...] = DEFAULT_ABNORMAL_WORDS
    symptom_percentile: float = 95.0
    symptom_window: int = 512
    edge_case_base_rate: float = 0.02
    sampler_seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.bloom_buffer_bytes <= 0:
            raise ValueError("bloom_buffer_bytes must be positive")
        if self.params_buffer_bytes <= 0:
            raise ValueError("params_buffer_bytes must be positive")
        if not 0.0 < self.symptom_percentile < 100.0:
            raise ValueError("symptom_percentile must be in (0, 100)")
