"""Mint agent-side components (paper Sections 3.4, 4.1, 4.2).

The agent is where Mint departs from '1 or 0' sampling: every incoming
sub-trace is parsed into patterns (kept cheaply, for all traces) and
parameters (buffered, uploaded only for sampled traces).
"""

from repro.agent.agent import MintAgent
from repro.agent.collector import MintCollector
from repro.agent.config import MintConfig
from repro.agent.params_buffer import ParamsBuffer
from repro.agent.pattern_library import MountedTopoLibrary
from repro.agent.reports import BloomReport, ParamsReport, PatternLibraryReport, Report
from repro.agent.samplers import EdgeCaseSampler, HeadSampler, Sampler, SymptomSampler, TailSampler

__all__ = [
    "MintConfig",
    "ParamsBuffer",
    "MountedTopoLibrary",
    "Report",
    "PatternLibraryReport",
    "BloomReport",
    "ParamsReport",
    "Sampler",
    "SymptomSampler",
    "EdgeCaseSampler",
    "HeadSampler",
    "TailSampler",
    "MintAgent",
    "MintCollector",
]
