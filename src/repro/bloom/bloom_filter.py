"""A from-scratch Bloom filter with the guarantees Mint relies on.

Paper Section 3.3: *"While Bloom Filters might falsely indicate that a
trace belongs to a pattern, they will never miss a trace that does
belong, ensuring trace coherence."*

The implementation mirrors Guava's (which the paper uses): given an
expected insertion count ``n`` and a target false-positive probability
``p``, the bit count is ``m = -n ln p / (ln 2)^2`` and the hash count is
``k = (m / n) ln 2``.  Double hashing over two independent 64-bit
digests generates the ``k`` probe positions.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable


def optimal_bit_count(expected_insertions: int, false_positive_probability: float) -> int:
    """Guava's formula: bits needed for ``n`` insertions at fpp ``p``."""
    if expected_insertions <= 0:
        raise ValueError("expected_insertions must be positive")
    if not 0.0 < false_positive_probability < 1.0:
        raise ValueError("false_positive_probability must be in (0, 1)")
    bits = -expected_insertions * math.log(false_positive_probability) / (math.log(2) ** 2)
    return max(8, int(math.ceil(bits)))


def optimal_hash_count(bit_count: int, expected_insertions: int) -> int:
    """Guava's formula: hash functions for ``m`` bits and ``n`` insertions."""
    k = (bit_count / expected_insertions) * math.log(2)
    return max(1, int(round(k)))


# Per-bit masks indexed by (position & 7): probing touches these on
# every insert/lookup, so they are built once instead of shifted inline.
_BIT_MASKS = tuple(1 << i for i in range(8))


def _digest_pair(item: str) -> tuple[int, int]:
    """Two independent 64-bit hashes from a single blake2b digest.

    One 16-byte blake2b call is cheaper than sha256 and yields both
    double-hashing seeds at once — this sits in the per-sub-trace hot
    path of every agent.
    """
    digest = hashlib.blake2b(item.encode("utf-8"), digest_size=16).digest()
    return (
        int.from_bytes(digest[:8], "big"),
        int.from_bytes(digest[8:16], "big"),
    )


class BloomFilter:
    """Fixed-size Bloom filter over strings.

    Parameters
    ----------
    expected_insertions:
        Capacity the filter is sized for.  Inserting more than this
        degrades the false-positive rate (it never causes misses).
    false_positive_probability:
        Target fpp at capacity.  The paper's default is 0.01.
    """

    def __init__(
        self,
        expected_insertions: int = 1000,
        false_positive_probability: float = 0.01,
    ) -> None:
        self.expected_insertions = expected_insertions
        self.false_positive_probability = false_positive_probability
        self.bit_count = optimal_bit_count(expected_insertions, false_positive_probability)
        self.hash_count = optimal_hash_count(self.bit_count, expected_insertions)
        self._bits = bytearray((self.bit_count + 7) // 8)
        self._inserted = 0

    def __len__(self) -> int:
        return self._inserted

    def _positions(self, item: str) -> Iterable[int]:
        h1, h2 = _digest_pair(item)
        for i in range(self.hash_count):
            yield (h1 + i * h2) % self.bit_count

    def add(self, item: str) -> None:
        """Insert ``item``; afterwards ``item in self`` is always True."""
        h1, h2 = _digest_pair(item)
        bits = self._bits
        masks = _BIT_MASKS
        m = self.bit_count
        pos = h1 % m
        step = h2 % m
        for _ in range(self.hash_count):
            bits[pos >> 3] |= masks[pos & 7]
            pos += step
            if pos >= m:
                pos -= m
        self._inserted += 1

    def __contains__(self, item: str) -> bool:
        h1, h2 = _digest_pair(item)
        bits = self._bits
        masks = _BIT_MASKS
        m = self.bit_count
        pos = h1 % m
        step = h2 % m
        for _ in range(self.hash_count):
            if not bits[pos >> 3] & masks[pos & 7]:
                return False
            pos += step
            if pos >= m:
                pos -= m
        return True

    @property
    def inserted(self) -> int:
        """Insertions recorded so far (carried across serialisation —
        a re-reported filter must advertise the same count, or the
        reshard snapshot would reset ``is_full`` on the destination)."""
        return self._inserted

    @property
    def is_full(self) -> bool:
        """True once the filter has absorbed its sized-for capacity.

        Mint reports and resets a filter at this point (paper
        Section 4.1: fixed 4 KB buffers, flushed when full).
        """
        return self._inserted >= self.expected_insertions

    @property
    def size_bytes(self) -> int:
        """Wire size of the bit array (what gets uploaded)."""
        return len(self._bits)

    @property
    def saturation(self) -> float:
        """Fraction of bits set — a health signal for fpp drift."""
        set_bits = int.from_bytes(self._bits, "big").bit_count()
        return set_bits / self.bit_count

    def estimated_fpp(self) -> float:
        """Current false-positive probability from the saturation level."""
        return self.saturation**self.hash_count

    def to_bytes(self) -> bytes:
        """Serialise the bit array for reporting."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(
        cls,
        payload: bytes,
        expected_insertions: int,
        false_positive_probability: float,
        inserted: int = 0,
    ) -> "BloomFilter":
        """Rebuild a reported filter on the backend."""
        filt = cls(expected_insertions, false_positive_probability)
        if len(payload) != len(filt._bits):
            raise ValueError(
                f"payload is {len(payload)} bytes, expected {len(filt._bits)}"
            )
        filt._bits = bytearray(payload)
        filt._inserted = inserted
        return filt

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Merge two filters built with identical parameters."""
        merged = BloomFilter(self.expected_insertions, self.false_positive_probability)
        merged.absorb(self)
        merged.absorb(other)
        return merged

    def absorb(self, other: "BloomFilter") -> None:
        """In-place OR of ``other`` into this filter (same geometry).

        After absorbing, every item present in ``other`` tests positive
        here (the superset property cross-shard merge indexes rely on);
        false positives may increase, misses never appear.  This is the
        one OR-merge implementation — :meth:`union` is a copy plus two
        absorbs.
        """
        if (
            self.bit_count != other.bit_count
            or self.hash_count != other.hash_count
        ):
            raise ValueError("cannot merge filters with different geometry")
        bits = self._bits
        for i, byte in enumerate(other._bits):
            if byte:
                bits[i] |= byte
        self._inserted += other._inserted

    def geometry(self) -> tuple[int, int]:
        """(bit_count, hash_count) — the compatibility key for merging."""
        return (self.bit_count, self.hash_count)


def sized_for_bytes(
    buffer_bytes: int, false_positive_probability: float = 0.01
) -> BloomFilter:
    """Build the largest filter that fits in ``buffer_bytes`` (paper
    default: 4 KB buffers per topo pattern).

    Works backwards from the bit budget to the insertion capacity at the
    requested fpp.
    """
    bit_budget = buffer_bytes * 8
    bits_per_item = -math.log(false_positive_probability) / (math.log(2) ** 2)
    # Closed form: capacity = floor(budget / bits_per_item) guarantees
    # ceil(capacity * bits_per_item) <= bit_budget, so the filter always
    # fits the byte budget (down to the 8-bit floor at degenerate
    # budgets) — no trial-construction shrink loop needed.
    capacity = max(1, int(bit_budget / bits_per_item))
    return BloomFilter(capacity, false_positive_probability)
