"""A from-scratch Bloom filter with the guarantees Mint relies on.

Paper Section 3.3: *"While Bloom Filters might falsely indicate that a
trace belongs to a pattern, they will never miss a trace that does
belong, ensuring trace coherence."*

The implementation mirrors Guava's (which the paper uses): given an
expected insertion count ``n`` and a target false-positive probability
``p``, the bit count is ``m = -n ln p / (ln 2)^2`` and the hash count is
``k = (m / n) ln 2``.  Double hashing over two independent 64-bit
digests generates the ``k`` probe positions.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable


def optimal_bit_count(expected_insertions: int, false_positive_probability: float) -> int:
    """Guava's formula: bits needed for ``n`` insertions at fpp ``p``."""
    if expected_insertions <= 0:
        raise ValueError("expected_insertions must be positive")
    if not 0.0 < false_positive_probability < 1.0:
        raise ValueError("false_positive_probability must be in (0, 1)")
    bits = -expected_insertions * math.log(false_positive_probability) / (math.log(2) ** 2)
    return max(8, int(math.ceil(bits)))


def optimal_hash_count(bit_count: int, expected_insertions: int) -> int:
    """Guava's formula: hash functions for ``m`` bits and ``n`` insertions."""
    k = (bit_count / expected_insertions) * math.log(2)
    return max(1, int(round(k)))


def _digest_pair(item: str) -> tuple[int, int]:
    digest = hashlib.sha256(item.encode("utf-8")).digest()
    return (
        int.from_bytes(digest[:8], "big"),
        int.from_bytes(digest[8:16], "big"),
    )


class BloomFilter:
    """Fixed-size Bloom filter over strings.

    Parameters
    ----------
    expected_insertions:
        Capacity the filter is sized for.  Inserting more than this
        degrades the false-positive rate (it never causes misses).
    false_positive_probability:
        Target fpp at capacity.  The paper's default is 0.01.
    """

    def __init__(
        self,
        expected_insertions: int = 1000,
        false_positive_probability: float = 0.01,
    ) -> None:
        self.expected_insertions = expected_insertions
        self.false_positive_probability = false_positive_probability
        self.bit_count = optimal_bit_count(expected_insertions, false_positive_probability)
        self.hash_count = optimal_hash_count(self.bit_count, expected_insertions)
        self._bits = bytearray((self.bit_count + 7) // 8)
        self._inserted = 0

    def __len__(self) -> int:
        return self._inserted

    def _positions(self, item: str) -> Iterable[int]:
        h1, h2 = _digest_pair(item)
        for i in range(self.hash_count):
            yield (h1 + i * h2) % self.bit_count

    def add(self, item: str) -> None:
        """Insert ``item``; afterwards ``item in self`` is always True."""
        for pos in self._positions(item):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self._inserted += 1

    def __contains__(self, item: str) -> bool:
        return all(
            self._bits[pos // 8] & (1 << (pos % 8)) for pos in self._positions(item)
        )

    @property
    def is_full(self) -> bool:
        """True once the filter has absorbed its sized-for capacity.

        Mint reports and resets a filter at this point (paper
        Section 4.1: fixed 4 KB buffers, flushed when full).
        """
        return self._inserted >= self.expected_insertions

    @property
    def size_bytes(self) -> int:
        """Wire size of the bit array (what gets uploaded)."""
        return len(self._bits)

    @property
    def saturation(self) -> float:
        """Fraction of bits set — a health signal for fpp drift."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.bit_count

    def estimated_fpp(self) -> float:
        """Current false-positive probability from the saturation level."""
        return self.saturation**self.hash_count

    def to_bytes(self) -> bytes:
        """Serialise the bit array for reporting."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(
        cls,
        payload: bytes,
        expected_insertions: int,
        false_positive_probability: float,
        inserted: int = 0,
    ) -> "BloomFilter":
        """Rebuild a reported filter on the backend."""
        filt = cls(expected_insertions, false_positive_probability)
        if len(payload) != len(filt._bits):
            raise ValueError(
                f"payload is {len(payload)} bytes, expected {len(filt._bits)}"
            )
        filt._bits = bytearray(payload)
        filt._inserted = inserted
        return filt

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Merge two filters built with identical parameters."""
        if (
            self.bit_count != other.bit_count
            or self.hash_count != other.hash_count
        ):
            raise ValueError("cannot union filters with different geometry")
        merged = BloomFilter(self.expected_insertions, self.false_positive_probability)
        merged._bits = bytearray(a | b for a, b in zip(self._bits, other._bits))
        merged._inserted = self._inserted + other._inserted
        return merged


def sized_for_bytes(
    buffer_bytes: int, false_positive_probability: float = 0.01
) -> BloomFilter:
    """Build the largest filter that fits in ``buffer_bytes`` (paper
    default: 4 KB buffers per topo pattern).

    Works backwards from the bit budget to the insertion capacity at the
    requested fpp.
    """
    bit_count = buffer_bytes * 8
    capacity = int(bit_count * (math.log(2) ** 2) / -math.log(false_positive_probability))
    capacity = max(1, capacity)
    filt = BloomFilter(capacity, false_positive_probability)
    while filt.size_bytes > buffer_bytes and capacity > 1:
        capacity -= max(1, capacity // 100)
        filt = BloomFilter(capacity, false_positive_probability)
    return filt
