"""Space-efficient probabilistic set membership (paper Section 3.3)."""

from repro.bloom.bloom_filter import (
    BloomFilter,
    optimal_bit_count,
    optimal_hash_count,
    sized_for_bytes,
)

__all__ = ["BloomFilter", "optimal_bit_count", "optimal_hash_count", "sized_for_bytes"]
