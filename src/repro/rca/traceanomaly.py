"""TraceAnomaly (Liu et al., ISSRE 2020): deviation from normal templates.

The original learns a deep Bayesian model of normal traces and locates
root causes by comparing an anomalous trace against its nearest normal
template.  The part the paper's experiment exercises — build normal
templates, find the service deviating most — is reproduced here with
per-(service, operation) statistical templates: enough to show the same
dependence on having normal traces to learn from.
"""

from __future__ import annotations

from collections import defaultdict

from repro.rca.spectrum import duration_baselines
from repro.rca.views import TraceView


class TraceAnomaly:
    """Normal-template deviation scoring."""

    name = "TraceAnomaly"

    def __init__(self, z_threshold: float = 4.0, error_weight: float = 5.0) -> None:
        self.z_threshold = z_threshold
        self.error_weight = error_weight

    def rank(self, views: list[TraceView]) -> list[tuple[str, float]]:
        """Services ranked by aggregate deviation from normal templates."""
        if not views:
            return []
        baselines = duration_baselines(views)
        abnormal = [v for v in views if v.is_abnormal]
        if not abnormal:
            # Without labels, treat the largest-deviation traces as
            # anomalous (unsupervised mode).
            abnormal = views
        deviation: dict[str, float] = defaultdict(float)
        for view in abnormal:
            for span in view.spans:
                if span.kind == "client":
                    continue
                score = 0.0
                if span.is_error:
                    score += self.error_weight
                baseline = baselines.get((view.source, span.service, span.operation))
                if baseline is not None:
                    mean, std = baseline
                    floor = max(std, 0.1 * mean, 1e-6)
                    z = (span.self_duration - mean) / floor
                    if z > self.z_threshold:
                        score += min(z, 50.0)
                if score > 0:
                    deviation[span.service] += score
        if not deviation:
            return []
        scored = sorted(deviation.items(), key=lambda item: (-item[1], item[0]))
        return scored

    def top1(self, views: list[TraceView]) -> str | None:
        """The most deviant service, or None without data."""
        ranked = self.rank(views)
        return ranked[0][0] if ranked else None
