"""MicroRank (Yu et al., WWW 2021): PageRank-weighted spectrum analysis.

MicroRank distinguishes anomalous from normal traces, runs personalised
PageRank over the trace-service bipartite graph to weight how much each
trace should count, then scores services with a weighted spectrum
formula.  It explicitly needs a healthy population of normal traces to
down-weight services that are merely *popular* rather than *suspect* —
the property the paper's Table 3 experiment stresses.
"""

from __future__ import annotations

import networkx as nx

from repro.rca.spectrum import SpectrumCounts, anomalous_spans, duration_baselines, ochiai
from repro.rca.views import TraceView


class MicroRank:
    """PageRank-extended spectrum localisation."""

    name = "MicroRank"

    def __init__(self, damping: float = 0.85, z_threshold: float = 4.0) -> None:
        self.damping = damping
        self.z_threshold = z_threshold

    def rank(self, views: list[TraceView]) -> list[tuple[str, float]]:
        """Services ranked by suspiciousness, highest first.

        Coverage in failing traces is restricted to the services whose
        own spans misbehaved (MicroRank's extended spectrum weights
        anomalous operation coverage, not mere membership — a fault's
        entire ancestor chain is co-covered by construction and pure
        membership coverage cannot separate it).
        """
        if not views:
            return []
        baselines = duration_baselines(views)
        flagged: list[TraceView] = []
        anomalous_cover: dict[str, set[str]] = {}
        for view in views:
            bad = anomalous_spans(view, baselines, self.z_threshold)
            is_abnormal = view.is_abnormal or bool(bad)
            flagged.append(
                TraceView(
                    trace_id=view.trace_id, spans=view.spans, is_abnormal=is_abnormal
                )
            )
            if is_abnormal:
                services = {s.service for s in bad}
                if not services:
                    # Prefer error-carrying services before falling back
                    # to whole-trace coverage (the ancestor chain).
                    services = {s.service for s in view.spans if s.is_error}
                if not services:
                    services = view.services
                anomalous_cover[view.trace_id] = services
        weights = self._pagerank_weights(flagged)
        counts = self._collect_restricted(flagged, anomalous_cover, weights)
        scored = [(service, ochiai(c)) for service, c in counts.items()]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored

    @staticmethod
    def _collect_restricted(
        views: list[TraceView],
        anomalous_cover: dict[str, set[str]],
        weights: dict[str, float],
    ) -> dict[str, SpectrumCounts]:
        all_services = {s for v in views for s in v.services}
        counts = {service: SpectrumCounts() for service in all_services}
        for view in views:
            weight = weights.get(view.trace_id, 1.0)
            if view.is_abnormal:
                covered = anomalous_cover.get(view.trace_id, view.services)
            else:
                covered = view.services
            for service in all_services:
                c = counts[service]
                if view.is_abnormal:
                    if service in covered:
                        c.ef += weight
                    else:
                        c.nf += weight
                else:
                    if service in covered:
                        c.ep += weight
                    else:
                        c.np += weight
        return counts

    def top1(self, views: list[TraceView]) -> str | None:
        """The most suspicious service, or None without data."""
        ranked = self.rank(views)
        return ranked[0][0] if ranked else None

    def _pagerank_weights(self, views: list[TraceView]) -> dict[str, float]:
        """Personalised PageRank over the trace-service bipartite graph.

        The preference vector favours anomalous traces, so a trace that
        touches suspicious services in rare combinations receives more
        voting power in the spectrum step.
        """
        graph = nx.DiGraph()
        for view in views:
            trace_node = ("trace", view.trace_id)
            graph.add_node(trace_node)
            for service in view.services:
                service_node = ("service", service)
                graph.add_edge(trace_node, service_node)
                graph.add_edge(service_node, trace_node)
        if graph.number_of_nodes() == 0:
            return {}
        abnormal = [v for v in views if v.is_abnormal]
        preference: dict = {}
        if abnormal:
            boost = 1.0 / len(abnormal)
            for view in views:
                preference[("trace", view.trace_id)] = (
                    boost if view.is_abnormal else 0.0
                )
            for node in graph.nodes:
                preference.setdefault(node, 0.0)
            total = sum(preference.values())
            if total <= 0:
                preference = None
        else:
            preference = None
        scores = nx.pagerank(
            graph, alpha=self.damping, personalization=preference
        )
        return {
            trace_id: scores.get(("trace", trace_id), 0.0)
            for trace_id in (v.trace_id for v in views)
        }
