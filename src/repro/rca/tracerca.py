"""TraceRCA (Li et al., IWQoS 2021): invocation-feature mining.

TraceRCA localises root causes by mining service sets whose invocations
turn anomalous in failing traces: for each candidate service it
combines *support* (how much of the anomalous traffic shows the service
misbehaving) with *confidence* (how much more often the service
misbehaves in abnormal traces than in normal ones).  Like MicroRank it
degrades sharply when the normal-trace contrast set is missing.
"""

from __future__ import annotations

from repro.rca.spectrum import anomalous_spans, duration_baselines
from repro.rca.views import TraceView


class TraceRCA:
    """Support x confidence mining over anomalous invocations."""

    name = "TraceRCA"

    def __init__(self, z_threshold: float = 4.0) -> None:
        self.z_threshold = z_threshold

    def rank(self, views: list[TraceView]) -> list[tuple[str, float]]:
        """Services ranked by support x confidence, highest first."""
        if not views:
            return []
        baselines = duration_baselines(views)
        abnormal_views = []
        normal_views = []
        for view in views:
            anomalous = anomalous_spans(view, baselines, self.z_threshold)
            if view.is_abnormal or anomalous:
                abnormal_views.append((view, {s.service for s in anomalous}))
            else:
                normal_views.append(view)
        if not abnormal_views:
            return []
        services = {s for view in views for s in view.services}
        scored: list[tuple[str, float]] = []
        n_abnormal = len(abnormal_views)
        n_normal = max(1, len(normal_views))
        for service in services:
            # Support: fraction of abnormal traces where this service's
            # own invocations were anomalous.
            misbehaving = sum(
                1 for _, bad in abnormal_views if service in bad
            )
            support = misbehaving / n_abnormal
            # Confidence: anomalous-in-abnormal rate against the rate of
            # simply appearing in normal traffic (popular-but-healthy
            # services score low).
            present_abnormal = sum(
                1 for view, _ in abnormal_views if service in view.services
            )
            present_normal = sum(
                1 for view in normal_views if service in view.services
            )
            if present_abnormal == 0:
                confidence = 0.0
            else:
                misbehave_rate = misbehaving / present_abnormal
                healthy_presence = present_normal / n_normal
                confidence = misbehave_rate * (1.0 + (1.0 - healthy_presence))
            scored.append((service, support * confidence))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored

    def top1(self, views: list[TraceView]) -> str | None:
        """The most suspicious service, or None without data."""
        ranked = self.rank(views)
        if not ranked or ranked[0][1] <= 0:
            return None
        return ranked[0][0]
