"""Uniform trace views for RCA, from exact or approximate traces.

RCA methods should not care which tracing framework produced their
input.  A :class:`TraceView` carries the per-span facts the three
methods consume: service, operation, duration, *self time* (duration
minus children — the signal that localises a fault to the service that
actually burned the time instead of its whole ancestor chain), and the
error flag.  Exact traces map directly; Mint's approximate traces map
through the pattern view (status from the pattern, durations as
bucket-range midpoints, children resolved from segment tree depths).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.model.span import SpanStatus
from repro.model.trace import Trace
from repro.query.result import ApproximateTrace, QueryResult


@dataclass(frozen=True)
class SpanView:
    """The slice of a span RCA methods look at."""

    service: str
    operation: str
    duration: float
    self_duration: float
    is_error: bool
    kind: str = "server"


@dataclass
class TraceView:
    """One trace as seen by an RCA method.

    ``source`` records whether the view came from an exact trace or a
    Mint approximate trace: durations of the two kinds live on
    different measurement scales (raw vs bucket midpoints), so
    statistical baselines must never mix them.
    """

    trace_id: str
    spans: list[SpanView] = field(default_factory=list)
    is_abnormal: bool = False
    source: str = "exact"

    @property
    def services(self) -> set[str]:
        """Services touched by the trace."""
        return {span.service for span in self.spans}

    @property
    def has_error(self) -> bool:
        """Any error span present."""
        return any(span.is_error for span in self.spans)


def view_from_trace(trace: Trace) -> TraceView:
    """Build a view from an exact trace (self time from parent links)."""
    children_sum: dict[str, float] = defaultdict(float)
    for span in trace.spans:
        if span.parent_id is not None:
            children_sum[span.parent_id] += span.duration
    spans = [
        SpanView(
            service=s.service,
            operation=s.name,
            duration=s.duration,
            self_duration=max(0.0, s.duration - children_sum[s.span_id]),
            is_error=s.status is SpanStatus.ERROR,
            kind=s.kind.value,
        )
        for s in trace.spans
    ]
    abnormal = any(
        s.attributes.get("is_abnormal") in (True, "true", 1) for s in trace.spans
    ) or any(sv.is_error for sv in spans)
    return TraceView(trace_id=trace.trace_id, spans=spans, is_abnormal=abnormal)


def views_from_traces(traces: Iterable[Trace]) -> list[TraceView]:
    """Vectorised :func:`view_from_trace`."""
    return [view_from_trace(t) for t in traces]


def views_from_cursor(results: Iterable[QueryResult]) -> list[TraceView]:
    """Build RCA views from a streaming query cursor.

    The batch constructor of the PR 5 query plane: exact hits map
    through :func:`view_from_trace`, partial hits through
    :func:`view_from_approximate`, misses contribute nothing.  Results
    stream one at a time, so a cursor over thousands of ids feeds RCA
    without materialising the reconstruction set.
    """
    views: list[TraceView] = []
    for result in results:
        if result.trace is not None:
            views.append(view_from_trace(result.trace))
        elif result.approximate is not None:
            views.append(view_from_approximate(result.approximate))
    return views


def view_from_approximate(approx: ApproximateTrace) -> TraceView:
    """Build a view from a Mint approximate trace.

    Durations come from the bucket-range midpoint of each span
    pattern's observed duration envelope; children (for self time) are
    recovered from the per-segment tree depths the querier renders.
    """
    spans: list[SpanView] = []
    for segment in approx.segments:
        rendered = segment.spans
        for index, view in enumerate(rendered):
            duration = _range_midpoint(view.get("duration"))
            depth = view.get("depth", 0)
            children = 0.0
            for other in rendered[index + 1 :]:
                other_depth = other.get("depth", 0)
                if other_depth <= depth:
                    break
                if other_depth == depth + 1:
                    children += _range_midpoint(other.get("duration"))
            spans.append(
                SpanView(
                    service=view["service"],
                    operation=view["name"],
                    duration=duration,
                    self_duration=max(0.0, duration - children),
                    is_error=view.get("status") == "error",
                    kind=view.get("kind", "server"),
                )
            )
    abnormal = any(s.is_error for s in spans)
    return TraceView(
        trace_id=approx.trace_id,
        spans=spans,
        is_abnormal=abnormal,
        source="approximate",
    )


def _range_midpoint(rendered: str | None) -> float:
    """Parse ``(lower, upper]`` back to its midpoint; 0.0 when unknown."""
    if not rendered or not rendered.startswith("(") or not rendered.endswith("]"):
        return 0.0
    body = rendered[1:-1]
    try:
        lower_s, upper_s = body.split(",")
        lower = float(lower_s)
        upper = float(upper_s)
    except ValueError:
        return 0.0
    return (lower + upper) / 2.0
