"""Spectrum analysis primitives shared by the RCA methods.

Spectrum-based fault localisation (Reps et al.; used by MicroRank and
TraceRCA) scores a program element — here, a service — by how its
coverage correlates with failures: elements covered by many failing
runs and few passing runs are suspicious.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable

from repro.rca.views import SpanView, TraceView


@dataclass
class SpectrumCounts:
    """Coverage counts for one service."""

    ef: float = 0.0  # covered by failing traces
    ep: float = 0.0  # covered by passing traces
    nf: float = 0.0  # not covered, failing
    np: float = 0.0  # not covered, passing


def ochiai(counts: SpectrumCounts) -> float:
    """The Ochiai suspiciousness score in [0, 1]."""
    denominator = ((counts.ef + counts.nf) * (counts.ef + counts.ep)) ** 0.5
    if denominator == 0:
        return 0.0
    return counts.ef / denominator


def collect_counts(
    views: Iterable[TraceView],
    weights: dict[str, float] | None = None,
) -> dict[str, SpectrumCounts]:
    """Per-service spectrum counts over a set of trace views.

    ``weights`` optionally weights each trace's contribution (MicroRank
    feeds PageRank scores here); default weight is 1.
    """
    weights = weights or {}
    counts: dict[str, SpectrumCounts] = {}
    all_services: set[str] = set()
    materialised = list(views)
    for view in materialised:
        all_services.update(view.services)
    for service in all_services:
        counts[service] = SpectrumCounts()
    for view in materialised:
        weight = weights.get(view.trace_id, 1.0)
        covered = view.services
        for service in all_services:
            c = counts[service]
            if view.is_abnormal:
                if service in covered:
                    c.ef += weight
                else:
                    c.nf += weight
            else:
                if service in covered:
                    c.ep += weight
                else:
                    c.np += weight
    return counts


def duration_baselines(
    views: Iterable[TraceView],
) -> dict[tuple[str, str, str], tuple[float, float]]:
    """(mean, stdev) of span *self time* per (source, service, operation),
    from normal traces only.

    Self time is the localising signal: a slow leaf inflates every
    ancestor's total duration, but only the leaf's self time moves.
    Baselines are keyed by view source because exact durations and
    approximate bucket-midpoint durations are different scales —
    comparing one against the other's statistics flags everything.
    """
    samples: dict[tuple[str, str, str], list[float]] = {}
    for view in views:
        if view.is_abnormal:
            continue
        for span in view.spans:
            if span.kind == "client":
                continue
            samples.setdefault(
                (view.source, span.service, span.operation), []
            ).append(span.self_duration)
    baselines: dict[tuple[str, str, str], tuple[float, float]] = {}
    for key, values in samples.items():
        mean = statistics.fmean(values)
        std = statistics.pstdev(values) if len(values) > 1 else 0.0
        baselines[key] = (mean, std)
    return baselines


def anomalous_spans(
    view: TraceView,
    baselines: dict[tuple[str, str, str], tuple[float, float]],
    z_threshold: float = 3.0,
) -> list[SpanView]:
    """Spans of ``view`` that deviate from their same-source baseline.

    A span is anomalous when it carries an error status or its self
    time exceeds mean + z_threshold * std (with a floor so near-constant
    baselines don't flag microsecond jitter).  Client spans are skipped:
    their time is the callee's, which has its own server span.  Spans
    with no same-source baseline are not judged.
    """
    out: list[SpanView] = []
    for span in view.spans:
        if span.kind == "client":
            continue
        if span.is_error:
            out.append(span)
            continue
        baseline = baselines.get((view.source, span.service, span.operation))
        if baseline is None:
            continue
        mean, std = baseline
        floor = max(std, 0.1 * mean, 1e-6)
        if span.self_duration > mean + z_threshold * floor:
            out.append(span)
    return out
