"""Trace-based root cause analysis methods (paper Table 3).

Three downstream consumers of trace data, reproduced at the level the
evaluation exercises: given the traces a tracing framework retained,
rank the services most likely to be the root cause of an ongoing fault.

All three need *normal* traces as a contrast population — which is
exactly why '1 or 0' sampling strategies cripple them and Mint's
keep-everything-approximately strategy helps (the paper's Table 3).
"""

from repro.rca.microrank import MicroRank
from repro.rca.spectrum import SpectrumCounts, anomalous_spans, ochiai
from repro.rca.traceanomaly import TraceAnomaly
from repro.rca.tracerca import TraceRCA
from repro.rca.views import (
    SpanView,
    TraceView,
    view_from_approximate,
    views_from_cursor,
    views_from_traces,
)

__all__ = [
    "SpanView",
    "TraceView",
    "views_from_traces",
    "views_from_cursor",
    "view_from_approximate",
    "SpectrumCounts",
    "ochiai",
    "anomalous_spans",
    "MicroRank",
    "TraceRCA",
    "TraceAnomaly",
]
