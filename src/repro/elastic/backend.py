"""The elastic sharded backend: mutable routing over stable engines.

:class:`ElasticShardedBackend` keeps the whole sharded merge layer and
changes exactly two things about its parent:

* **routing is mutable** — ``num_shards`` is the *routing modulus* and
  may change at a reshard cutover, and per-host overrides let the
  :class:`~repro.elastic.reshard.ReshardCoordinator` move hosts one at
  a time while ingest continues;
* **commits are supervised** — when a :class:`ShardChaosProfile` is
  attached, every store runs through the
  :class:`~repro.elastic.supervisor.ShardSupervisor`, and reads go
  through a :class:`ShardRoster` that skips crashed shards, so queries
  during an outage degrade to ``partial``/``miss`` instead of raising.

The engine list itself only ever *grows* (``ensure_engines``) and
engines are never dropped or reordered: shard index ``i`` means the
same box for the whole run, which keeps the transport's per-shard
ledgers and storage-sync bookkeeping valid across resharding, and
keeps a retired shard's pattern library resolvable through the merged
fan-out — content-addressed patterns never need migrating.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.backend.sharded import (
    MergedStorageView,
    ShardedBackend,
    ShardedQuerier,
    ShardSummary,
    shard_for_key,
)
from repro.backend.storage import StorageEngine
from repro.elastic.chaos import ShardChaosProfile
from repro.elastic.supervisor import ShardSupervisor
from repro.transport.wire import NotifyMeter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.agent.collector import MintCollector
    from repro.agent.reports import Report


class ShardRoster:
    """The merged view's window onto the engines: live shards only.

    List-shaped so :class:`MergedStorageView` and its helpers work
    unchanged: *iteration* yields only the engines of shards that are
    currently reachable (fan-out reads skip a crashed box, degrading
    the answer instead of raising), while *indexing* stays absolute —
    shard ``i`` is engine ``i`` whether or not shard ``i - 1`` is down.
    Backed by the backend's own engine list, so engines appended by a
    reshard appear in every fan-out automatically.
    """

    def __init__(self, engines: list[StorageEngine], backend: "ElasticShardedBackend"):
        self._engines = engines
        self._backend = backend

    def __iter__(self) -> Iterator[StorageEngine]:
        down = self._backend.down_shards()
        for index, engine in enumerate(self._engines):
            if index not in down:
                yield engine

    def __getitem__(self, index: int) -> StorageEngine:
        return self._engines[index]

    def __len__(self) -> int:
        return len(self._engines)


class ElasticShardedBackend(ShardedBackend):
    """A sharded backend whose shard map can change while it runs."""

    def __init__(
        self,
        num_shards: int = 1,
        bloom_buffer_bytes: int = 4096,
        bloom_fpp: float = 0.01,
        notify_meter: NotifyMeter | None = None,
        target_shards: int | None = None,
        shard_chaos: ShardChaosProfile | None = None,
    ) -> None:
        super().__init__(
            num_shards=num_shards,
            bloom_buffer_bytes=bloom_buffer_bytes,
            bloom_fpp=bloom_fpp,
            notify_meter=notify_meter,
        )
        self._bloom_buffer_bytes = bloom_buffer_bytes
        self._bloom_fpp = bloom_fpp
        self.target_shards = target_shards
        self._route_overrides: dict[str, int] = {}
        self.supervisor: ShardSupervisor | None = None
        if shard_chaos is not None and not shard_chaos.is_benign:
            self.supervisor = ShardSupervisor(
                profile=shard_chaos,
                commit=self._commit_direct,
                owner_of=self.shard_for,
            )
        if target_shards is not None:
            self.ensure_engines(target_shards)
        # Swap the merge layer onto the roster so fan-out reads skip
        # crashed shards; built before any report arrives, so no merge
        # state is lost by the rebuild.
        self.roster = ShardRoster(self.shards, self)
        self.merged = MergedStorageView(self.roster)  # type: ignore[arg-type]
        self.querier = ShardedQuerier(self.merged)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def ensure_engines(self, count: int) -> None:
        """Grow the engine list to at least ``count`` boxes.

        Appending (never replacing) keeps every existing shard index
        stable; the new engines are empty and start receiving traffic
        only once routing points hosts at them.
        """
        while len(self.shards) < count:
            self.shards.append(
                StorageEngine(
                    bloom_buffer_bytes=self._bloom_buffer_bytes,
                    bloom_fpp=self._bloom_fpp,
                )
            )

    def shard_for(self, node: str) -> int:
        """Current owner of ``node``: a migration override, else hash."""
        override = self._route_overrides.get(node)
        if override is not None:
            return override
        return shard_for_key(node, self.num_shards)

    def pin_route(self, node: str, shard: int) -> None:
        """Route ``node`` to ``shard`` regardless of the hash map.

        The reshard cutover: the coordinator pins a moving host to its
        destination *before* snapshotting the source engine, so every
        report not in the snapshot is delivered to the destination —
        the two sets are disjoint and nothing is lost or doubled.
        """
        if not 0 <= shard < len(self.shards):
            raise ValueError(f"cannot pin {node!r} to unknown shard {shard}")
        self._route_overrides[node] = shard

    def set_routing_shards(self, num_shards: int) -> None:
        """Flip the hash modulus and drop now-redundant overrides."""
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self.ensure_engines(num_shards)
        self.num_shards = num_shards
        self._route_overrides = {
            node: shard
            for node, shard in self._route_overrides.items()
            if shard_for_key(node, num_shards) != shard
        }

    def down_shards(self) -> set[int]:
        """Shards currently unreachable (empty without chaos)."""
        if self.supervisor is None:
            return set()
        return self.supervisor.down_shards()

    # ------------------------------------------------------------------
    # The supervised commit path
    # ------------------------------------------------------------------
    def _commit(self, report: "Report") -> None:
        if self.supervisor is not None and self.supervisor.intercept(report):
            return
        super()._commit(report)

    def _commit_direct(self, report: "Report") -> None:
        """The supervisor's replay path: store without re-interception.

        Routes through :meth:`_engine_for` at *replay* time, so a host
        that migrated while its report was parked commits to its
        current owner."""
        ShardedBackend._commit(self, report)

    def settle(self) -> None:
        """Replay every recoverable parked report (end-of-run)."""
        if self.supervisor is not None:
            self.supervisor.settle()

    # ------------------------------------------------------------------
    # Accounting (shard count may exceed the routing modulus)
    # ------------------------------------------------------------------
    def collectors_on_shard(self, shard: int) -> list["MintCollector"]:
        """The collectors whose hosts the shard owns *right now*.

        Recomputed live instead of from registration-time owners — the
        whole point of this backend is that ownership moves."""
        return [
            collector
            for collector in self._collectors
            if self.shard_for(collector.node) == shard
        ]

    def shard_summaries(self) -> list[ShardSummary]:
        """Per-shard tables over every engine, with live host owners."""
        hosts_by_shard: dict[int, list[str]] = {
            i: [] for i in range(len(self.shards))
        }
        for collector in self._collectors:
            hosts_by_shard[self.shard_for(collector.node)].append(collector.node)
        return [
            ShardSummary(
                shard=i,
                hosts=sorted(hosts_by_shard[i]),
                pattern_bytes=shard.pattern_bytes,
                bloom_bytes=shard.bloom_bytes,
                params_bytes=shard.params_bytes,
                storage_bytes=shard.storage_bytes(),
                sampled_traces=len(shard.sampled_trace_ids),
            )
            for i, shard in enumerate(self.shards)
        ]
