"""Queue-depth-driven autoscaling over the reshard protocol.

The pressure signal is per-shard *queue depth*: reports waiting in the
transport's send queues for links the shard owns, plus reports parked
in the supervisor's redelivery queue for that shard.  Depth is the
honest backlog metric in this system — a shard that cannot keep up (or
is down) accumulates exactly there — and it is observable without
touching the byte tables.

:class:`AutoscalePolicy` turns depths into a target shard count with
hysteresis (scale up at ``scale_up_depth``, down only below
``scale_down_depth``, cooldown between transitions);
:class:`Autoscaler` binds a policy to a framework, runs one
:class:`~repro.elastic.reshard.ReshardCoordinator` transition at a
time, and spreads the host moves one per observation tick so migration
interleaves with ingest exactly as the manual harness does.  The fig14
load shapes drive it in :func:`repro.sim.elastic.run_elastic_load_test`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.elastic.backend import ElasticShardedBackend
from repro.elastic.reshard import ReshardCoordinator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.framework import MintFramework


@dataclass(frozen=True)
class AutoscalePolicy:
    """When to change the shard count, as immutable configuration."""

    scale_up_depth: int = 32
    scale_down_depth: int = 2
    min_shards: int = 1
    max_shards: int = 8
    factor: int = 2
    cooldown_s: float = 10.0

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.factor < 2:
            raise ValueError("factor must be >= 2")
        if self.scale_down_depth >= self.scale_up_depth:
            raise ValueError(
                "scale_down_depth must sit below scale_up_depth (hysteresis)"
            )
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")

    def target(self, current: int, depths: list[int]) -> int | None:
        """The shard count the depths call for, or None to hold."""
        if not depths:
            return None
        peak = max(depths)
        if peak >= self.scale_up_depth and current < self.max_shards:
            return min(self.max_shards, current * self.factor)
        if peak <= self.scale_down_depth and current > self.min_shards:
            return max(self.min_shards, current // self.factor)
        return None


@dataclass
class ScaleEvent:
    """One autoscaling decision, for the load-test report."""

    at_s: float
    from_shards: int
    to_shards: int
    peak_depth: int

    def as_dict(self) -> dict[str, object]:
        return {
            "at_s": round(self.at_s, 3),
            "from_shards": self.from_shards,
            "to_shards": self.to_shards,
            "peak_depth": self.peak_depth,
        }


@dataclass
class Autoscaler:
    """A policy bound to one framework's backend and transport."""

    framework: "MintFramework"
    policy: AutoscalePolicy = field(default_factory=AutoscalePolicy)
    events: list[ScaleEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not isinstance(self.framework.backend, ElasticShardedBackend):
            raise TypeError("autoscaling needs an elastic deployment")
        self._coordinator: ReshardCoordinator | None = None
        self._last_scale_s = float("-inf")
        self.peak_depth = 0

    # ------------------------------------------------------------------
    # The pressure signal
    # ------------------------------------------------------------------
    def shard_depths(self) -> list[int]:
        """Per-shard backlog: queued wire reports + parked redeliveries."""
        backend = self.framework.backend
        depths = [0] * len(backend.shards)
        for link, depth in self.framework.transport.queue_depths().items():
            depths[backend.shard_for(link)] += depth
        supervisor = backend.supervisor
        if supervisor is not None:
            for shard, depth in supervisor.queue_depths().items():
                depths[shard] += depth
        return depths

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def observe(self, now: float) -> None:
        """One control tick: advance a migration, or decide a new one.

        An in-progress transition takes priority — one host moves per
        tick, so migration load spreads over the ingest timeline
        instead of stalling it."""
        if self._coordinator is not None:
            if not self._coordinator.step():
                self._coordinator = None
            return
        if now - self._last_scale_s < self.policy.cooldown_s:
            return
        depths = self.shard_depths()
        if depths:
            self.peak_depth = max(self.peak_depth, max(depths))
        backend = self.framework.backend
        target = self.policy.target(backend.num_shards, depths)
        if target is None or target == backend.num_shards:
            return
        self.events.append(
            ScaleEvent(
                at_s=now,
                from_shards=backend.num_shards,
                to_shards=target,
                peak_depth=max(depths),
            )
        )
        self._last_scale_s = now
        self._coordinator = ReshardCoordinator(
            backend, self.framework.transport, target
        )
        self._coordinator.start()

    def finish(self) -> None:
        """Complete any in-flight transition (end of the load shape)."""
        if self._coordinator is not None:
            self._coordinator.run()
            self._coordinator = None

    @property
    def resharding(self) -> bool:
        """True while a transition is mid-flight."""
        return self._coordinator is not None
