"""Shard-level fault injection: chaos beyond the wire.

:mod:`repro.net.chaos` perturbs the *links* between collectors and the
backend; this module perturbs the *backend boxes themselves*.  A
:class:`ShardChaosProfile` is an immutable schedule of per-shard
outages — a crash (permanent), a crash-restart window, or a slow-shard
window that delays commits without losing them — evaluated purely from
simulated time, so a profile is deterministic by construction (no RNG:
which box dies, and when, is the experiment's controlled variable).

The supervisor in :mod:`repro.elastic.supervisor` consumes these
profiles: deliveries to a crashed shard park in a bounded redelivery
queue and replay on restart, reads skip the dead shard (queries degrade
to ``partial`` instead of raising), and a slow shard's commits are
simply late.  ``fit_outages`` plays the role ``fit_partitions`` plays
for the wire: it maps a profile's absolute outage times into a concrete
stream's lifetime so reduced CI workloads still cross the failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

OUTAGE_MODES = ("crash", "slow")


@dataclass(frozen=True)
class ShardOutage:
    """One shard's failure window.

    ``mode == "crash"`` makes the shard unreachable during
    ``[start_s, end_s)`` — the default ``end_s`` of infinity is the
    permanent crash.  ``mode == "slow"`` keeps the shard readable but
    delays every commit landing inside the window by ``slowdown_s``.
    """

    shard: int
    start_s: float
    end_s: float = math.inf
    mode: str = "crash"
    slowdown_s: float = 0.0

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError("outage shard index must be >= 0")
        if self.end_s <= self.start_s:
            raise ValueError("outage window must end after it starts")
        if self.mode not in OUTAGE_MODES:
            raise ValueError(f"outage mode must be one of {OUTAGE_MODES}")
        if self.slowdown_s < 0:
            raise ValueError("slowdown_s must be >= 0")
        if self.mode == "slow" and self.slowdown_s == 0:
            raise ValueError("a slow-shard outage needs slowdown_s > 0")
        if self.mode == "slow" and math.isinf(self.end_s):
            raise ValueError("a slow-shard outage must end (use a crash for permanence)")

    def covers(self, now: float) -> bool:
        """True when the outage is active at ``now``."""
        return self.start_s <= now < self.end_s

    @property
    def is_permanent(self) -> bool:
        """True for a crash the schedule never recovers from."""
        return math.isinf(self.end_s)


@dataclass(frozen=True)
class ShardChaosProfile:
    """A named schedule of shard outages (the backend's adversary)."""

    name: str
    outages: tuple[ShardOutage, ...] = ()

    @property
    def is_benign(self) -> bool:
        """True when the profile schedules no outage at all."""
        return not self.outages

    def down(self, shard: int, now: float) -> bool:
        """True when ``shard`` is crashed (unreachable) at ``now``."""
        return any(
            o.shard == shard and o.mode == "crash" and o.covers(now)
            for o in self.outages
        )

    def slowdown(self, shard: int, now: float) -> float:
        """Commit delay for ``shard`` at ``now`` (0 when healthy)."""
        return max(
            (
                o.slowdown_s
                for o in self.outages
                if o.shard == shard and o.mode == "slow" and o.covers(now)
            ),
            default=0.0,
        )

    def down_shards(self, now: float) -> set[int]:
        """Every shard crashed at ``now`` (what reads must skip)."""
        return {
            o.shard
            for o in self.outages
            if o.mode == "crash" and o.covers(now)
        }

    def final_recovery_s(self) -> float:
        """When the last *recoverable* outage ends (0 with none).

        Permanent crashes are excluded: they have no recovery time, and
        the settle pass that replays parked queues must not wait on
        them.
        """
        return max(
            (o.end_s for o in self.outages if not o.is_permanent), default=0.0
        )


def fit_outages(
    profile: ShardChaosProfile,
    duration_s: float,
    start_frac: float = 0.2,
    end_frac: float = 0.5,
) -> ShardChaosProfile:
    """Rescale a profile's outage times into a stream's lifetime.

    Mirrors :func:`repro.net.chaos.fit_partitions`: outage times are
    absolute simulated seconds, so a window placed for a ten-minute run
    never fires on a five-second CI stream.  Every finite time is
    mapped proportionally from the profile's own span into
    ``[start_frac, end_frac] * duration_s`` (relative timing between
    outages is preserved); a permanent crash keeps its infinite end —
    only its onset moves.
    """
    if profile.is_benign or duration_s <= 0:
        return profile
    span = max(
        max((o.end_s for o in profile.outages if not o.is_permanent), default=0.0),
        max(o.start_s for o in profile.outages),
    )
    if span <= 0:
        return profile
    lo = start_frac * duration_s
    hi = max(end_frac * duration_s, lo + 1e-6)

    def rescale(t: float) -> float:
        if math.isinf(t):
            return t
        return lo + (t / span) * (hi - lo)

    return replace(
        profile,
        outages=tuple(
            replace(o, start_s=rescale(o.start_s), end_s=rescale(o.end_s))
            for o in profile.outages
        ),
    )


# The standard shard-chaos suite.  Shard 1 is the victim so every
# profile works from two shards up; times are absolute and meant to be
# passed through ``fit_outages`` with the stream's duration, exactly as
# the wire profiles go through ``fit_partitions``.
SHARD_CHAOS_PROFILES: dict[str, ShardChaosProfile] = {
    "crash": ShardChaosProfile(
        "crash", (ShardOutage(shard=1, start_s=5.0),)
    ),
    "crash_restart": ShardChaosProfile(
        "crash_restart", (ShardOutage(shard=1, start_s=5.0, end_s=20.0),)
    ),
    "slow_shard": ShardChaosProfile(
        "slow_shard",
        (ShardOutage(shard=1, start_s=5.0, end_s=20.0, mode="slow", slowdown_s=2.0),),
    ),
}
