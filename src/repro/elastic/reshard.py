"""Live resharding: minimal host movement, streamed over the wire.

``shard_for_key`` is a stable content hash, so rescaling from ``from_n``
to ``to_n`` shards moves exactly the hosts whose hash changes owner —
the :class:`ReshardCoordinator` computes that minimal set and migrates
it host by host while ingest continues:

1. **cutover** — the host's route is pinned to its destination shard,
   so every delivery from this instant lands on the new owner;
2. **snapshot** — the source engine's state for the host (stored Bloom
   filters and parameter buckets) is evicted in one step.  Cutover
   happens *first*, so the snapshot and the post-cutover deliveries
   partition the host's reports exactly: nothing is stranded, nothing
   is stored twice;
3. **stream** — the snapshot is re-sent as ordinary Bloom/params
   reports through :meth:`Transport.deliver_migration`, which charges
   the separate ``migration`` meter (the ``retransmit`` discipline:
   byte tables stay topology-invariant, the overhead is visible on its
   own meter).  Over the simulated network plane the state rides real
   migration links — batched, lossy, retried — and still converges.

Pattern libraries never move: their ids are content hashes, so the
merged fan-out resolves any shard's copy, and the destination re-learns
patterns from live traffic for free.  When every host is placed, the
routing modulus flips to ``to_n`` and the overrides dissolve into the
hash map.  The correctness bar (``run_elastic_bench.py --check``) is
bit-identity: a migrated deployment's byte tables, query signatures and
stored-trace sets equal a fresh ``Deployment.sharded(to_n)`` run over
the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.agent.reports import BloomReport, ParamsReport
from repro.backend.sharded import shard_for_key
from repro.elastic.backend import ElasticShardedBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.transport.transport import Transport


@dataclass(frozen=True)
class HostMove:
    """One host's relocation in a reshard plan."""

    host: str
    source: int
    target: int


@dataclass
class MigrationStats:
    """What the migration cost, host by host and in total."""

    hosts_moved: int = 0
    bloom_reports: int = 0
    params_reports: int = 0
    migrated_bytes: int = 0
    moves: list[HostMove] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        return {
            "hosts_moved": self.hosts_moved,
            "bloom_reports": self.bloom_reports,
            "params_reports": self.params_reports,
            "migrated_bytes": self.migrated_bytes,
            "moves": [
                {"host": m.host, "source": m.source, "target": m.target}
                for m in self.moves
            ],
        }


class ReshardCoordinator:
    """Drives one ``from_n -> to_n`` transition, one host per step.

    ``step()`` migrates a single host and returns True while work
    remains, so a harness can interleave migration with ingest —
    routing never stops, queries never stop.  ``run()`` is the
    uninterleaved convenience.  The plan is recomputed when the queue
    empties, so hosts first seen *during* the migration are placed too
    before the routing modulus flips.
    """

    def __init__(
        self,
        backend: ElasticShardedBackend,
        transport: "Transport",
        to_shards: int,
    ) -> None:
        if not isinstance(backend, ElasticShardedBackend):
            raise TypeError(
                "live resharding needs an elastic deployment "
                "(Deployment.resharded / Deployment.elastic_sharded)"
            )
        if to_shards <= 0:
            raise ValueError("resharding needs at least one destination shard")
        self.backend = backend
        self.transport = transport
        self.to_shards = to_shards
        self.stats = MigrationStats()
        self.finished = False
        self._pending: list[HostMove] = []
        self._started = False
        backend.ensure_engines(to_shards)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self) -> list[HostMove]:
        """The minimal movement set: hosts whose hash changes owner.

        Computed against the backend's *current* routing, so hosts
        already pinned to their destination drop out — the plan is
        always the remaining work."""
        moves = []
        for collector in self.backend._collectors:
            host = collector.node
            source = self.backend.shard_for(host)
            target = shard_for_key(host, self.to_shards)
            if source != target:
                moves.append(HostMove(host=host, source=source, target=target))
        return moves

    def start(self) -> None:
        """Freeze the initial plan (idempotent)."""
        if not self._started:
            self._pending = self.plan()
            self._started = True

    @property
    def active(self) -> bool:
        """True from ``start()`` until the routing modulus flipped."""
        return self._started and not self.finished

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Migrate one host; True while more work remains."""
        if self.finished:
            return False
        self.start()
        if not self._pending:
            self._pending = self.plan()
        if self._pending:
            self._migrate(self._pending.pop(0))
        if not self._pending and not self.plan():
            self._finish()
            return False
        return True

    def run(self) -> MigrationStats:
        """Migrate every host back to back, then flip routing."""
        while self.step():
            pass
        return self.stats

    def _migrate(self, move: HostMove) -> None:
        backend = self.backend
        # (1) cutover: from here on the host's deliveries land on the
        # target shard, so the snapshot below is everything the source
        # will ever hold for this host.
        backend.pin_route(move.host, move.target)
        # (2) snapshot: evict the host's stored state from the source
        # engine (byte counters move with it).
        source = backend.shards[move.source]
        blooms, params = source.evict_host(move.host)
        # (3) stream the snapshot as ordinary reports on the migration
        # meter.  Filters are re-serialised from the stored state —
        # bit-for-bit what was stored, so re-storing on the target
        # conserves the merged byte tables exactly.
        for stored in blooms:
            report = BloomReport(
                node=move.host,
                topo_pattern_id=stored.topo_pattern_id,
                payload=stored.filter.to_bytes(),
                inserted=stored.filter.inserted,
            )
            self.stats.bloom_reports += 1
            self.stats.migrated_bytes += report.size_bytes()
            self.transport.deliver_migration(report)
        for trace_id in sorted(params):
            report = ParamsReport(
                node=move.host, trace_id=trace_id, records=params[trace_id]
            )
            self.stats.params_reports += 1
            self.stats.migrated_bytes += report.size_bytes()
            self.transport.deliver_migration(report)
        self.stats.hosts_moved += 1
        self.stats.moves.append(move)

    def _finish(self) -> None:
        """Flip the hash modulus; overrides dissolve into the new map."""
        self.backend.set_routing_shards(self.to_shards)
        self.finished = True


def placement_violations(backend: ElasticShardedBackend) -> list[str]:
    """Audit that every host's stored state sits on its hash owner.

    The post-migration invariant behind the bit-identity gate: for
    every registered host, no engine other than
    ``shard_for_key(host, num_shards)`` holds any of its Bloom filters
    or parameter records (modulo still-pinned routes, which count as
    the owner)."""
    violations: list[str] = []
    owners = {
        collector.node: backend.shard_for(collector.node)
        for collector in backend._collectors
    }
    for index, engine in enumerate(backend.shards):
        for stored in engine.blooms:
            if owners.get(stored.node, index) != index:
                violations.append(
                    f"bloom for {stored.node} on shard {index}, "
                    f"owner is {owners[stored.node]}"
                )
        for trace_id, bucket in engine.params.items():
            for record in bucket:
                node = record[2]
                if owners.get(node, index) != index:
                    violations.append(
                        f"params of {trace_id} from {node} on shard {index}, "
                        f"owner is {owners[node]}"
                    )
    return violations
