"""Elastic deployments: live resharding, shard failover, autoscaling.

The deployment plane so far fixed its topology at construction; this
package makes it elastic while keeping every invariance gate:

* :mod:`repro.elastic.backend` — :class:`ElasticShardedBackend`, the
  sharded merge layer with a *mutable* shard map: per-host routing
  overrides, a grow-only engine list (stable shard indices), and a
  :class:`ShardRoster` that lets fan-out reads skip crashed shards;
* :mod:`repro.elastic.reshard` — the :class:`ReshardCoordinator`
  migration protocol: minimal host movement on top of ``shard_for_key``,
  cutover-then-snapshot per host so ingest never stops, state streamed
  as ordinary reports on the separate ``migration`` meter;
* :mod:`repro.elastic.chaos` — :class:`ShardChaosProfile` schedules
  (crash, crash-restart, slow-shard), deterministic in simulated time;
* :mod:`repro.elastic.supervisor` — the :class:`ShardSupervisor`:
  timeout detection, exponential-backoff probing, a bounded redelivery
  queue, and in-order replay on restart;
* :mod:`repro.elastic.autoscale` — queue-depth-driven
  :class:`AutoscalePolicy` / :class:`Autoscaler` triggering reshards
  under the fig14 load shapes.

Two gates pin this package's correctness
(``benchmarks/perf/run_elastic_bench.py --check``):

* **reshard bit-identity** — after a live ``from_n -> to_n`` migration
  the deployment's byte tables, query signatures and stored-trace sets
  equal a fresh ``Deployment.sharded(to_n)`` run over the same stream,
  with migration traffic confined to the ``migration`` meter;
* **failover convergence** — under every recoverable shard-chaos
  profile, queries during the outage degrade to ``partial`` without
  raising, and after replay the answers equal the no-chaos run's.
"""

from repro.elastic.autoscale import AutoscalePolicy, Autoscaler, ScaleEvent
from repro.elastic.backend import ElasticShardedBackend, ShardRoster
from repro.elastic.chaos import (
    SHARD_CHAOS_PROFILES,
    ShardChaosProfile,
    ShardOutage,
    fit_outages,
)
from repro.elastic.reshard import (
    HostMove,
    MigrationStats,
    ReshardCoordinator,
    placement_violations,
)
from repro.elastic.supervisor import ShardSupervisor, SupervisorStats

__all__ = [
    "SHARD_CHAOS_PROFILES",
    "AutoscalePolicy",
    "Autoscaler",
    "ElasticShardedBackend",
    "HostMove",
    "MigrationStats",
    "ReshardCoordinator",
    "ScaleEvent",
    "ShardChaosProfile",
    "ShardOutage",
    "ShardRoster",
    "ShardSupervisor",
    "SupervisorStats",
    "fit_outages",
    "placement_violations",
]
