"""The shard supervisor: failure detection, parking, and replay.

Sits on the elastic backend's commit path, between the transport's
exactly-once delivery and the storage engines.  When the shard owning a
report is crashed (per the deployment's :class:`ShardChaosProfile`),
the commit attempt *times out*: the supervisor marks the shard
suspected-down, parks the report in a bounded redelivery queue, and
re-probes the shard with exponential backoff.  When a probe finds the
shard back (the outage window ended), the parked queue replays in
arrival order — commits go straight into the engines, with no new wire
bytes, because the transport already charged these reports at delivery.

A slow shard parks too, but with a due time instead of an outage: its
commits land ``slowdown_s`` late and in order, which is exactly what a
backed-up box does.

Nothing here is random: outages come from the profile's schedule and
time comes from the transport's clock, so a chaos run is replayable —
and the harness gates can assert that the chaos demonstrably fired
(timeouts observed, reports parked, replay happened) rather than being
vacuously green.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.elastic.chaos import ShardChaosProfile
from repro.obs.trace import NULL_OBSERVER, Observer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agent.reports import Report

# Simulated-time source (bound to the transport's wire clock).
ClockFn = Callable[[], float]


@dataclass
class SupervisorStats:
    """What the chaos demonstrably did — the gates' evidence."""

    timeouts: int = 0
    parked: int = 0
    replayed: int = 0
    dropped: int = 0
    probes: int = 0
    recoveries: int = 0
    max_parked: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "timeouts": self.timeouts,
            "parked": self.parked,
            "replayed": self.replayed,
            "dropped": self.dropped,
            "probes": self.probes,
            "recoveries": self.recoveries,
            "max_parked": self.max_parked,
        }


@dataclass
class _Parked:
    """One undeliverable report waiting in a shard's redelivery queue."""

    report: "Report"
    due_s: float
    # Simulated instant the report was parked — the park->replay stage
    # latency is measured against this, entirely in sim time, so the
    # panel is deterministic for a given chaos schedule.
    parked_at_s: float = 0.0


@dataclass
class ShardSupervisor:
    """Detects dead shards, parks undeliverable reports, replays them.

    ``commit`` is the direct store path (the elastic backend's
    supervisor-free commit), used both for replay and so a replayed
    report is routed by the *current* shard map — a host migrated while
    its report was parked lands on its new owner.
    """

    profile: ShardChaosProfile
    commit: Callable[["Report"], None]
    owner_of: Callable[[str], int]
    redelivery_capacity: int = 4096
    rto_s: float = 0.5
    max_backoff_s: float = 8.0
    stats: SupervisorStats = field(default_factory=SupervisorStats)

    def __post_init__(self) -> None:
        if self.redelivery_capacity < 1:
            raise ValueError("redelivery_capacity must be >= 1")
        if self.rto_s <= 0:
            raise ValueError("rto_s must be > 0")
        if self.max_backoff_s < self.rto_s:
            raise ValueError("max_backoff_s must be >= rto_s")
        self._clock: ClockFn = lambda: 0.0
        self._time = 0.0
        self._queues: dict[int, deque[_Parked]] = {}
        self._parked_total = 0
        # Suspected-down shards and their backoff probe schedule.
        self._suspected: set[int] = set()
        self._attempts: dict[int, int] = {}
        self._next_probe: dict[int, float] = {}
        self.observer: Observer = NULL_OBSERVER

    def bind_clock(self, clock: ClockFn) -> None:
        """Point the supervisor at the transport's simulated clock."""
        self._clock = clock

    def bind_observer(self, observer: Observer) -> None:
        """Attach the observability plane's handle."""
        self.observer = observer

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current simulated time (monotonic across clock rebinds)."""
        self._time = max(self._time, self._clock())
        return self._time

    # ------------------------------------------------------------------
    # The commit path
    # ------------------------------------------------------------------
    def intercept(self, report: "Report") -> bool:
        """Decide one report's fate; True when it was parked.

        Ticks the redelivery queues first, so a restart observed at
        this delivery replays the backlog *before* the new report —
        per-shard commit order is arrival order, always.
        """
        now = self.now()
        self.pump(now)
        shard = self.owner_of(report.node)
        queue = self._queues.get(shard)
        if queue:
            # FIFO behind an undrained backlog, whatever delayed it.
            self._park(shard, report, queue[-1].due_s)
            return True
        if self.profile.down(shard, now):
            # The delivery timed out against a dead box: suspect it and
            # schedule the first backoff probe.
            self.stats.timeouts += 1
            if shard not in self._suspected:
                self._suspected.add(shard)
                self._attempts[shard] = 1
                self._next_probe[shard] = now + self._backoff(1)
            self._park(shard, report, now)
            return True
        slowdown = self.profile.slowdown(shard, now)
        if slowdown > 0:
            self._park(shard, report, now + slowdown)
            return True
        return False

    def _backoff(self, attempts: int) -> float:
        return min(self.rto_s * (2 ** (attempts - 1)), self.max_backoff_s)

    def _park(self, shard: int, report: "Report", due_s: float) -> None:
        queue = self._queues.setdefault(shard, deque())
        if self._parked_total >= self.redelivery_capacity:
            # The bounded queue is full: shed the oldest parked report
            # for this shard (degraded, and counted — the gates assert
            # a healthy run sheds nothing).
            victim_queue = queue if queue else max(
                self._queues.values(), key=len
            )
            victim_queue.popleft()
            self._parked_total -= 1
            self.stats.dropped += 1
        if queue and due_s < queue[-1].due_s:
            due_s = queue[-1].due_s
        queue.append(_Parked(report, due_s, parked_at_s=self._time))
        self._parked_total += 1
        self.stats.parked += 1
        self.stats.max_parked = max(self.stats.max_parked, self._parked_total)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def pump(self, now: float | None = None) -> None:
        """Probe suspected shards and replay whatever became deliverable.

        A suspected shard is only re-tried at its backoff-scheduled
        probe time; a probe that finds the outage over clears the
        suspicion and replays the shard's queue in arrival order (up to
        entries whose due time — slow-shard delay — is still in the
        future).
        """
        if now is None:
            now = self.now()
        for shard in list(self._queues):
            queue = self._queues[shard]
            if not queue:
                continue
            if shard in self._suspected:
                next_probe = self._next_probe.get(shard, 0.0)
                if now < next_probe:
                    continue
                self.stats.probes += 1
                if self.profile.down(shard, now):
                    # Still dead: back off further.
                    attempts = self._attempts.get(shard, 1) + 1
                    self._attempts[shard] = attempts
                    self._next_probe[shard] = now + self._backoff(attempts)
                    continue
                self._suspected.discard(shard)
                self._attempts.pop(shard, None)
                self._next_probe.pop(shard, None)
                self.stats.recoveries += 1
            elif self.profile.down(shard, now):
                continue
            while queue and queue[0].due_s <= now:
                entry = queue.popleft()
                self._parked_total -= 1
                self.commit(entry.report)
                self.stats.replayed += 1
                if self.observer.enabled:
                    self.observer.observe_sim(
                        "supervisor_park_replay",
                        max(0.0, now - entry.parked_at_s),
                        shard=str(shard),
                    )

    def settle(self) -> None:
        """End-of-run convergence: replay everything replayable.

        Advances the supervisor's clock past every recoverable outage
        and every slow-shard due time, forces immediate probes, and
        pumps until only permanently-crashed shards' queues remain.
        Called by the framework's ``finalize`` after the transport
        drained, so post-finalize queries see the reconverged store.
        """
        if not self._parked_total:
            return
        horizon = self.now()
        horizon = max(horizon, self.profile.final_recovery_s())
        for queue in self._queues.values():
            for entry in queue:
                horizon = max(horizon, entry.due_s)
        self._time = max(self._time, horizon)
        self._next_probe = {shard: 0.0 for shard in self._suspected}
        self.pump(self._time)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def down_shards(self) -> set[int]:
        """Shards unreachable right now (what reads must skip).

        Ticks the queues first so a read after a restart sees the
        replayed state even when no new delivery has pumped yet.
        """
        now = self.now()
        self.pump(now)
        return self.profile.down_shards(now)

    def queue_depths(self) -> dict[int, int]:
        """Parked reports per shard (the autoscaler's pressure signal)."""
        return {
            shard: len(queue) for shard, queue in self._queues.items() if queue
        }

    @property
    def parked_reports(self) -> int:
        """Reports currently parked across all redelivery queues."""
        return self._parked_total
