"""Evaluation metrics: query hit rates and RCA accuracy."""

from __future__ import annotations

from collections import Counter
from typing import Iterable


def hit_breakdown(statuses: Iterable[str]) -> dict[str, int]:
    """Counts of 'exact' / 'partial' / 'miss' query outcomes."""
    counts = Counter(statuses)
    return {
        "exact": counts.get("exact", 0),
        "partial": counts.get("partial", 0),
        "miss": counts.get("miss", 0),
    }


def miss_rate(statuses: Iterable[str]) -> float:
    """Fraction of queries with no record at all (paper Fig. 3)."""
    materialised = list(statuses)
    if not materialised:
        return 0.0
    return sum(1 for s in materialised if s == "miss") / len(materialised)


def top1_accuracy(predictions: Iterable[str | None], truths: Iterable[str]) -> float:
    """A@1 over paired (predicted root cause, true root cause) lists."""
    pairs = list(zip(list(predictions), list(truths)))
    if not pairs:
        return 0.0
    return sum(1 for predicted, truth in pairs if predicted == truth) / len(pairs)
