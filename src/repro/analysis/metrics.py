"""Evaluation metrics: query hit rates and RCA accuracy."""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.query.result import QueryStatus


def hit_breakdown(statuses: Iterable[str]) -> dict[str, int]:
    """Counts of 'exact' / 'partial' / 'miss' query outcomes.

    Accepts :class:`QueryStatus` members or their string values (the
    enum hashes and compares as its value, so mixtures fold together).
    """
    counts = Counter(statuses)
    return {
        status.value: counts.get(status, 0) for status in QueryStatus
    }


def miss_rate(statuses: Iterable[str]) -> float:
    """Fraction of queries with no record at all (paper Fig. 3)."""
    materialised = list(statuses)
    if not materialised:
        return 0.0
    return sum(1 for s in materialised if s == QueryStatus.MISS) / len(materialised)


def top1_accuracy(predictions: Iterable[str | None], truths: Iterable[str]) -> float:
    """A@1 over paired (predicted root cause, true root cause) lists."""
    pairs = list(zip(list(predictions), list(truths)))
    if not pairs:
        return 0.0
    return sum(1 for predicted, truth in pairs if predicted == truth) / len(pairs)
