"""Commonality statistics over trace corpora (paper Table 1).

The paper counts *pairs with commonality*: two traces (or spans) that
share a common pattern, as a fraction of all pairs.  Grouping by
pattern signature turns the quadratic pair count into sums of
``C(group_size, 2)``, so corpora of hundreds of thousands of spans are
cheap to analyse.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.model.trace import Trace


@dataclass(frozen=True)
class CommonalityStats:
    """Occurrence (pair count) and proportion of same-pattern pairs."""

    total_items: int
    pairs_with_commonality: int
    total_pairs: int

    @property
    def proportion(self) -> float:
        """Fraction of pairs sharing a pattern (the paper's % column)."""
        if self.total_pairs == 0:
            return 0.0
        return self.pairs_with_commonality / self.total_pairs


def _pair_stats(signature_counts: Counter) -> CommonalityStats:
    total = sum(signature_counts.values())
    same = sum(count * (count - 1) // 2 for count in signature_counts.values())
    all_pairs = total * (total - 1) // 2
    return CommonalityStats(
        total_items=total, pairs_with_commonality=same, total_pairs=all_pairs
    )


def trace_signature(trace: Trace) -> tuple:
    """The inter-trace commonality key: the ordered service/operation
    path of the request (traces of the same request type share it)."""
    return tuple(
        sorted((span.service, span.name, span.kind.value) for span in trace.spans)
    )


def span_signature(service: str, name: str, kind: str, attr_keys: tuple) -> tuple:
    """The inter-span commonality key.

    Paper Section 2.2.3: spans share a pattern when they "possess the
    same keys and their values follow a similar pattern" — a structural
    notion (same instrumentation shape), not same-operation identity.
    The signature is therefore the span kind plus its attribute key
    set; ``service``/``name`` are accepted for call-site symmetry but
    do not partition.
    """
    del service, name
    return (kind, attr_keys)


def inter_trace_commonality(traces: Iterable[Trace]) -> CommonalityStats:
    """Table 1's inter-trace row for a corpus."""
    counts: Counter = Counter()
    for trace in traces:
        counts[trace_signature(trace)] += 1
    return _pair_stats(counts)


def inter_span_commonality(traces: Iterable[Trace]) -> CommonalityStats:
    """Table 1's inter-span row for a corpus."""
    counts: Counter = Counter()
    for trace in traces:
        for span in trace.spans:
            counts[
                span_signature(
                    span.service,
                    span.name,
                    span.kind.value,
                    tuple(sorted(span.attributes)),
                )
            ] += 1
    return _pair_stats(counts)
