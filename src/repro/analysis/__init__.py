"""Measurement and reporting helpers for the evaluation harness."""

from repro.analysis.commonality import (
    CommonalityStats,
    inter_span_commonality,
    inter_trace_commonality,
)
from repro.analysis.metrics import hit_breakdown, miss_rate, top1_accuracy
from repro.analysis.reporting import render_table

__all__ = [
    "CommonalityStats",
    "inter_trace_commonality",
    "inter_span_commonality",
    "miss_rate",
    "hit_breakdown",
    "top1_accuracy",
    "render_table",
]
