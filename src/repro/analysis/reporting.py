"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows the paper's tables and
figure series report; this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}" if abs(cell) < 100 else f"{cell:,.1f}"
    return str(cell)
