"""The Span Parser: inter-span commonality + variability analysis.

Implements both stages from paper Section 3.2:

* **offline** (:meth:`SpanParser.warm_up`) — sample m raw spans, cluster
  each attribute's values, extract patterns, build per-attribute parsers;
* **online** (:meth:`SpanParser.parse`) — Hierarchical Attribute Parsing:
  every attribute is matched independently against its parser, the
  matched attribute patterns are combined into a span pattern, and the
  span pattern is looked up (or registered) in the Pattern Library.

The output of parsing a span is a :class:`ParsedSpan`: a pattern id (the
commonality) plus the variable parameters (the variability).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.model.encoding import encoded_size
from repro.model.span import Span, SpanKind, SpanStatus
from repro.parsing.attribute_parser import (
    NumericAttributeParser,
    ParamValue,
    StringAttributeParser,
)
from repro.parsing.numeric_buckets import NumericBucketer
from repro.parsing.string_patterns import template_from_text

# Reserved attribute key under which the span's duration is parsed; the
# paper's example in Fig. 7 buckets `duration` like any numeric attribute.
DURATION_KEY = "__duration__"


NUMERIC_MARKER = "<num>"


@dataclass(frozen=True)
class SpanPattern:
    """The common part of a family of spans.

    Identity covers everything that is structural: the span name,
    service, kind, status, and for every attribute key its kind and
    pattern — the template text for strings, the generic ``<num>``
    marker for numerics.  Numeric *bucket ranges* are deliberately not
    part of the identity: durations and sizes drift across exponential
    buckets, and folding the bucket into the identity would cross-product
    span patterns (and with them topo patterns) far beyond the dozens
    the paper observes (Table 5).  Observed bucket ranges are tracked by
    the :class:`SpanPatternLibrary` instead and rendered in approximate
    traces (paper Fig. 10's "numbers are bucket-mapped").
    """

    name: str
    service: str
    kind: str
    status: str
    attributes: tuple[tuple[str, str, str], ...]  # (key, kind, pattern)

    @property
    def pattern_id(self) -> str:
        """Stable 16-hex-char id derived from the pattern content.

        The paper assigns UUIDs; a content hash keeps ids identical
        across runs and across agents observing the same pattern, which
        the backend merge relies on.
        """
        digest = hashlib.sha1(repr(self).encode("utf-8")).hexdigest()
        return digest[:16]

    def to_dict(self) -> dict[str, Any]:
        """Serialisable form, used for upload size accounting."""
        return {
            "pattern_id": self.pattern_id,
            "name": self.name,
            "service": self.service,
            "kind": self.kind,
            "status": self.status,
            "attributes": [list(entry) for entry in self.attributes],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanPattern":
        """Rebuild a pattern from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            service=data["service"],
            kind=data["kind"],
            status=data["status"],
            attributes=tuple(tuple(entry) for entry in data["attributes"]),
        )

    def masked_attributes(
        self, numeric_ranges: dict[str, tuple[float, float]] | None = None
    ) -> dict[str, str]:
        """Attribute view for approximate traces.

        String variables appear as ``<*>`` wildcards; numeric values
        appear as their observed bucket interval when ``numeric_ranges``
        is provided (else the generic ``<num>`` marker).
        """
        ranges = numeric_ranges or {}
        out: dict[str, str] = {}
        for key, kind, pattern in self.attributes:
            if key == DURATION_KEY:
                continue
            if kind == "numeric":
                out[key] = _render_range(ranges.get(key))
            else:
                out[key] = pattern
        return out

    def duration_pattern(
        self, numeric_ranges: dict[str, tuple[float, float]] | None = None
    ) -> str | None:
        """Bucket interval observed for the span duration, if known."""
        ranges = numeric_ranges or {}
        for key, _, _ in self.attributes:
            if key == DURATION_KEY:
                return _render_range(ranges.get(DURATION_KEY))
        return None


def _render_range(bounds: tuple[float, float] | None) -> str:
    if bounds is None:
        return NUMERIC_MARKER
    lower, upper = bounds

    def fmt(x: float) -> str:
        return str(int(x)) if x == int(x) else f"{x:.6g}"

    return f"({fmt(lower)}, {fmt(upper)}]"


@dataclass
class ParsedSpan:
    """A span split into its pattern id and variable parameters."""

    trace_id: str
    span_id: str
    parent_id: str | None
    node: str
    start_time: float
    pattern_id: str
    params: dict[str, ParamValue] = field(default_factory=dict)

    def params_record(self) -> dict[str, Any]:
        """The variability record buffered / uploaded for this span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "pattern_id": self.pattern_id,
            "start_time": self.start_time,
            "params": self.params,
        }

    def compact_record(self, pattern: SpanPattern) -> list[Any]:
        """Positional wire format for parameter uploads.

        ``[span_id, parent_id, node, pattern_id, start_time, values]``
        with ``values`` ordered by the pattern's attribute tuple — the
        pattern already names every key, so repeating key strings per
        span would waste the bytes the whole design is saving.
        """
        values = [self.params[key] for key, _, _ in pattern.attributes]
        return [
            self.span_id,
            self.parent_id,
            self.node,
            self.pattern_id,
            round(self.start_time, 6),
            values,
        ]

    @classmethod
    def from_compact_record(
        cls, trace_id: str, record: list[Any], pattern: SpanPattern
    ) -> "ParsedSpan":
        """Inverse of :meth:`compact_record`."""
        span_id, parent_id, node, pattern_id, start_time, values = record
        params = {
            key: values[i] for i, (key, _, _) in enumerate(pattern.attributes)
        }
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            node=node,
            start_time=start_time,
            pattern_id=pattern_id,
            params=params,
        )

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "ParsedSpan":
        """Rebuild a parsed span from a :meth:`params_record` dict."""
        return cls(
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            node=record.get("node", "node-0"),
            start_time=record.get("start_time", 0.0),
            pattern_id=record["pattern_id"],
            params=dict(record.get("params", {})),
        )

    def params_size_bytes(self) -> int:
        """Bytes this span contributes to the Params Buffer."""
        return encoded_size(self.params_record())


class SpanPatternLibrary:
    """The agent-side Pattern Library for span patterns.

    Besides the patterns themselves, the library tracks the observed
    exponential-bucket range of every numeric attribute per pattern —
    the data behind the bucket-mapped numeric display in approximate
    traces (paper Fig. 10).
    """

    def __init__(self, alpha: float = 0.5) -> None:
        self._patterns: dict[str, SpanPattern] = {}
        self._match_counts: dict[str, int] = {}
        self._bucketer = NumericBucketer(alpha=alpha)
        self._numeric_ranges: dict[str, dict[str, tuple[float, float]]] = {}

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pattern_id: str) -> bool:
        return pattern_id in self._patterns

    def register(self, pattern: SpanPattern) -> str:
        """Add (or re-find) ``pattern``; returns its id and bumps the
        match counter either way."""
        pattern_id = pattern.pattern_id
        if pattern_id not in self._patterns:
            self._patterns[pattern_id] = pattern
        self._match_counts[pattern_id] = self._match_counts.get(pattern_id, 0) + 1
        return pattern_id

    def get(self, pattern_id: str) -> SpanPattern:
        """Pattern by id; raises KeyError when unknown."""
        return self._patterns[pattern_id]

    def match_count(self, pattern_id: str) -> int:
        """How many spans matched this pattern so far."""
        return self._match_counts.get(pattern_id, 0)

    def observe_numeric(self, pattern_id: str, key: str, value: float) -> None:
        """Fold ``value``'s bucket into the pattern's observed range."""
        bucket = self._bucketer.bucket_of(value)
        lower = -bucket.upper if bucket.negative else bucket.lower
        upper = -bucket.lower if bucket.negative else bucket.upper
        ranges = self._numeric_ranges.setdefault(pattern_id, {})
        current = ranges.get(key)
        if current is None:
            ranges[key] = (lower, upper)
        else:
            ranges[key] = (min(current[0], lower), max(current[1], upper))

    def numeric_ranges(self, pattern_id: str) -> dict[str, tuple[float, float]]:
        """Observed (lower, upper] bucket envelope per numeric key."""
        return dict(self._numeric_ranges.get(pattern_id, {}))

    def pattern_dict(self, pattern_id: str) -> dict[str, Any]:
        """Serialisable pattern including its current numeric ranges."""
        data = self._patterns[pattern_id].to_dict()
        ranges = self._numeric_ranges.get(pattern_id)
        if ranges:
            data["numeric_ranges"] = {k: list(v) for k, v in sorted(ranges.items())}
        return data

    def patterns(self) -> list[SpanPattern]:
        """All patterns in insertion order."""
        return list(self._patterns.values())

    def size_bytes(self) -> int:
        """Upload size of the whole library."""
        return encoded_size([self.pattern_dict(pid) for pid in self._patterns])


class SpanParser:
    """Parses raw spans into span patterns plus parameters."""

    def __init__(
        self,
        similarity_threshold: float = 0.8,
        alpha: float = 0.5,
        scope_by_operation: bool = True,
    ) -> None:
        """``scope_by_operation`` trains one parser per (service,
        operation, key); disabling it trains one parser per key across
        all operations, which is what makes the similarity threshold a
        live tradeoff (paper Fig. 16): loose thresholds then merge
        values from different operations into wildcard-heavy templates
        whose parameters carry the bytes."""
        self.similarity_threshold = similarity_threshold
        self.alpha = alpha
        self.scope_by_operation = scope_by_operation
        self.library = SpanPatternLibrary(alpha=alpha)
        self._string_parsers: dict[str, StringAttributeParser] = {}
        self._numeric_parsers: dict[str, NumericAttributeParser] = {}

    # ------------------------------------------------------------------
    # Offline stage (paper Section 3.2.1)
    # ------------------------------------------------------------------
    def warm_up(self, spans: Iterable[Span]) -> None:
        """Build per-attribute parsers from a sample of raw spans.

        Parsers are scoped per (service, operation, attribute key):
        values of the same key from different operations share skeleton
        shape but differ in operation-specific constants, and clustering
        them together would fragment templates into wildcard confetti
        that stores those constants as parameters on every span.
        """
        string_values: dict[str, list[str]] = {}
        warmup_spans = list(spans)
        for span in warmup_spans:
            for key, value in span.string_attributes().items():
                scope = self._scope(span, key)
                string_values.setdefault(scope, []).append(value)
        for scope, values in string_values.items():
            parser = self._string_parser(scope)
            parser.warm_up(values)
        # Register the span patterns of the warm-up sample so the library
        # starts populated (mitigates the cold-start issue the paper notes).
        for span in warmup_spans:
            self.parse(span)

    # ------------------------------------------------------------------
    # Online stage (paper Section 3.2.2)
    # ------------------------------------------------------------------
    def parse(self, span: Span, observe_ranges: bool = True) -> ParsedSpan:
        """Hierarchical Attribute Parsing of one raw span.

        Every attribute is parsed independently (the paper runs these in
        parallel; sequential here, same result), then the attribute
        patterns are combined and looked up in the Pattern Library.

        ``observe_ranges=False`` defers numeric-range tracking to the
        caller (the agent withholds range updates for traces it ends up
        sampling, so pattern ranges describe the *common* case and are
        not widened by the very outliers whose exact values are kept).
        """
        entries: list[tuple[str, str, str]] = []
        params: dict[str, ParamValue] = {}
        numeric_values: dict[str, float] = {}
        for key, value in sorted(span.attributes.items()):
            if key.startswith("__"):
                raise ValueError(f"attribute key {key!r} uses the reserved prefix")
            if isinstance(value, str):
                parsed = self._string_parser(self._scope(span, key)).parse(value)
                entries.append((key, parsed.kind, parsed.pattern))
                params[key] = parsed.param
            elif isinstance(value, bool):
                parsed = self._string_parser(self._scope(span, key)).parse(str(value))
                entries.append((key, parsed.kind, parsed.pattern))
                params[key] = parsed.param
            else:
                entries.append((key, "numeric", NUMERIC_MARKER))
                params[key] = float(value)
                numeric_values[key] = float(value)
        entries.append((DURATION_KEY, "numeric", NUMERIC_MARKER))
        params[DURATION_KEY] = span.duration
        numeric_values[DURATION_KEY] = span.duration
        pattern = SpanPattern(
            name=span.name,
            service=span.service,
            kind=span.kind.value,
            status=span.status.value,
            attributes=tuple(sorted(entries)),
        )
        pattern_id = self.library.register(pattern)
        if observe_ranges:
            for key, value in numeric_values.items():
                self.library.observe_numeric(pattern_id, key, value)
        return ParsedSpan(
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            node=span.node,
            start_time=span.start_time,
            pattern_id=pattern_id,
            params=params,
        )

    def _scope(self, span: Span, key: str) -> str:
        """Parser scope: per (service, operation, key) by default."""
        if self.scope_by_operation:
            return f"{span.service}|{span.name}|{key}"
        return key

    def _string_parser(self, key: str) -> StringAttributeParser:
        parser = self._string_parsers.get(key)
        if parser is None:
            parser = StringAttributeParser(key, self.similarity_threshold)
            self._string_parsers[key] = parser
        return parser

    def _numeric_parser(self, key: str) -> NumericAttributeParser:
        parser = self._numeric_parsers.get(key)
        if parser is None:
            parser = NumericAttributeParser(key, alpha=self.alpha)
            self._numeric_parsers[key] = parser
        return parser


# ----------------------------------------------------------------------
# Reconstruction helpers (backend side, stateless)
# ----------------------------------------------------------------------
def reconstruct_exact_span(pattern: SpanPattern, parsed: ParsedSpan) -> Span:
    """Rebuild the original span from its pattern and parameters.

    Inverse of :meth:`SpanParser.parse`: operates on pattern text alone
    so the backend does not need parser state.
    """
    attributes: dict[str, Any] = {}
    duration = 0.0
    for key, kind, pattern_text in pattern.attributes:
        param = parsed.params[key]
        if kind == "string":
            template = template_from_text(pattern_text)
            if not isinstance(param, list):
                raise TypeError(f"string attribute {key!r} carries {type(param)}")
            value: Any = template.reconstruct(param)
        else:
            if isinstance(param, list):
                raise TypeError(f"numeric attribute {key!r} carries a list")
            value = float(param)
        if key == DURATION_KEY:
            duration = float(value)
        else:
            attributes[key] = value
    return Span(
        trace_id=parsed.trace_id,
        span_id=parsed.span_id,
        parent_id=parsed.parent_id,
        name=pattern.name,
        service=pattern.service,
        kind=SpanKind(pattern.kind),
        start_time=parsed.start_time,
        duration=duration,
        status=SpanStatus(pattern.status),
        node=parsed.node,
        attributes=attributes,
    )


def approximate_span_view(
    pattern: SpanPattern,
    numeric_ranges: dict[str, tuple[float, float]] | None = None,
) -> dict[str, Any]:
    """The masked span view returned for unsampled traces (paper Fig. 10).

    String variables appear as ``<*>``; numeric values appear as their
    observed bucket interval when ranges were reported with the pattern.
    """
    return {
        "name": pattern.name,
        "service": pattern.service,
        "kind": pattern.kind,
        "status": pattern.status,
        "duration": pattern.duration_pattern(numeric_ranges),
        "attributes": pattern.masked_attributes(numeric_ranges),
    }
