"""The Span Parser: inter-span commonality + variability analysis.

Implements both stages from paper Section 3.2:

* **offline** (:meth:`SpanParser.warm_up`) — sample m raw spans, cluster
  each attribute's values, extract patterns, build per-attribute parsers;
* **online** (:meth:`SpanParser.parse`) — Hierarchical Attribute Parsing:
  every attribute is matched independently against its parser, the
  matched attribute patterns are combined into a span pattern, and the
  span pattern is looked up (or registered) in the Pattern Library.

The output of parsing a span is a :class:`ParsedSpan`: a pattern id (the
commonality) plus the variable parameters (the variability).
"""

from __future__ import annotations

import hashlib
import json as _json
import math as _math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterable

from repro.model.encoding import JSON_ESCAPE_RE, encoded_size, json_value_size
from repro.model.span import Span, SpanKind, SpanStatus
from repro.parsing.attribute_parser import ParamValue, StringAttributeParser
from repro.parsing.numeric_buckets import NumericBucketer
from repro.parsing.string_patterns import template_from_text

# Reserved attribute key under which the span's duration is parsed; the
# paper's example in Fig. 7 buckets `duration` like any numeric attribute.
DURATION_KEY = "__duration__"


NUMERIC_MARKER = "<num>"

# Placeholders marking plan slots whose content is read from the live
# span on replay: numeric values, and volatile (high-cardinality) string
# attributes that are re-parsed each time.
_NUMERIC_SLOT = object()
_VOLATILE_SLOT = object()


def _plan_key(span: "Span", attributes: dict, vol_set: set) -> tuple:
    """Structural identity of a span for the replay-plan table.

    Uses the attribute dict's insertion order — no sort on the hit
    path; spans emitting the same attributes in a different order just
    learn a second (equivalent) plan.  Volatile (high-cardinality)
    attribute values stay out of the key: they would defeat caching and
    are re-parsed per span on replay.  The single key builder is shared
    by lookup and storage, which must agree byte for byte.
    """
    key_parts: list = [span.name, span.service, span.kind, span.status]
    for key, value in attributes.items():
        cls = value.__class__
        if cls is str or cls is bool or isinstance(value, (str, bool)):
            if key in vol_set:
                key_parts.append((key,))
            else:
                key_parts.append((key, value))
        else:
            key_parts.append(key)
    return tuple(key_parts)


@dataclass(frozen=True)
class SpanPattern:
    """The common part of a family of spans.

    Identity covers everything that is structural: the span name,
    service, kind, status, and for every attribute key its kind and
    pattern — the template text for strings, the generic ``<num>``
    marker for numerics.  Numeric *bucket ranges* are deliberately not
    part of the identity: durations and sizes drift across exponential
    buckets, and folding the bucket into the identity would cross-product
    span patterns (and with them topo patterns) far beyond the dozens
    the paper observes (Table 5).  Observed bucket ranges are tracked by
    the :class:`SpanPatternLibrary` instead and rendered in approximate
    traces (paper Fig. 10's "numbers are bucket-mapped").
    """

    name: str
    service: str
    kind: str
    status: str
    attributes: tuple[tuple[str, str, str], ...]  # (key, kind, pattern)

    @cached_property
    def pattern_id(self) -> str:
        """Stable 16-hex-char id derived from the pattern content.

        The paper assigns UUIDs; a content hash keeps ids identical
        across runs and across agents observing the same pattern, which
        the backend merge relies on.  The digest is computed once per
        pattern object; repeated span shapes never even reach it because
        :meth:`SpanPatternLibrary.intern` resolves them by structural
        key first.
        """
        digest = hashlib.sha1(repr(self).encode("utf-8")).hexdigest()
        return digest[:16]

    def to_dict(self) -> dict[str, Any]:
        """Serialisable form, used for upload size accounting."""
        return {
            "pattern_id": self.pattern_id,
            "name": self.name,
            "service": self.service,
            "kind": self.kind,
            "status": self.status,
            "attributes": [list(entry) for entry in self.attributes],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanPattern":
        """Rebuild a pattern from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            service=data["service"],
            kind=data["kind"],
            status=data["status"],
            attributes=tuple(tuple(entry) for entry in data["attributes"]),
        )

    def masked_attributes(
        self, numeric_ranges: dict[str, tuple[float, float]] | None = None
    ) -> dict[str, str]:
        """Attribute view for approximate traces.

        String variables appear as ``<*>`` wildcards; numeric values
        appear as their observed bucket interval when ``numeric_ranges``
        is provided (else the generic ``<num>`` marker).
        """
        ranges = numeric_ranges or {}
        out: dict[str, str] = {}
        for key, kind, pattern in self.attributes:
            if key == DURATION_KEY:
                continue
            if kind == "numeric":
                out[key] = _render_range(ranges.get(key))
            else:
                out[key] = pattern
        return out

    def duration_pattern(
        self, numeric_ranges: dict[str, tuple[float, float]] | None = None
    ) -> str | None:
        """Bucket interval observed for the span duration, if known."""
        ranges = numeric_ranges or {}
        for key, _, _ in self.attributes:
            if key == DURATION_KEY:
                return _render_range(ranges.get(DURATION_KEY))
        return None


def _render_range(bounds: tuple[float, float] | None) -> str:
    if bounds is None:
        return NUMERIC_MARKER
    lower, upper = bounds

    def fmt(x: float) -> str:
        return str(int(x)) if x == int(x) else f"{x:.6g}"

    return f"({fmt(lower)}, {fmt(upper)}]"


@dataclass
class ParsedSpan:
    """A span split into its pattern id and variable parameters."""

    trace_id: str
    span_id: str
    parent_id: str | None
    node: str
    start_time: float
    pattern_id: str
    params: dict[str, ParamValue] = field(default_factory=dict)

    def params_record(self) -> dict[str, Any]:
        """The variability record buffered / uploaded for this span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "pattern_id": self.pattern_id,
            "start_time": self.start_time,
            "params": self.params,
        }

    def compact_record(self, pattern: SpanPattern) -> list[Any]:
        """Positional wire format for parameter uploads.

        ``[span_id, parent_id, node, pattern_id, start_time, values]``
        with ``values`` ordered by the pattern's attribute tuple — the
        pattern already names every key, so repeating key strings per
        span would waste the bytes the whole design is saving.
        """
        values = [self.params[key] for key, _, _ in pattern.attributes]
        return [
            self.span_id,
            self.parent_id,
            self.node,
            self.pattern_id,
            round(self.start_time, 6),
            values,
        ]

    @classmethod
    def from_compact_record(
        cls, trace_id: str, record: list[Any], pattern: SpanPattern
    ) -> "ParsedSpan":
        """Inverse of :meth:`compact_record`."""
        span_id, parent_id, node, pattern_id, start_time, values = record
        params = {
            key: values[i] for i, (key, _, _) in enumerate(pattern.attributes)
        }
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            node=node,
            start_time=start_time,
            pattern_id=pattern_id,
            params=params,
        )

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "ParsedSpan":
        """Rebuild a parsed span from a :meth:`params_record` dict."""
        return cls(
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            node=record.get("node", "node-0"),
            start_time=record.get("start_time", 0.0),
            pattern_id=record["pattern_id"],
            params=dict(record.get("params", {})),
        )

    def params_size_bytes(self) -> int:
        """Bytes this span contributes to the Params Buffer.

        Byte-identical to ``encoded_size(self.params_record())`` (the
        invariant the fast-path tests enforce), but computed as a cached
        per-key-set base size plus per-value deltas instead of rendering
        the record as JSON for every span.
        """
        params = self.params
        search = JSON_ESCAPE_RE.search
        dumps = _json.dumps
        isfinite = _math.isfinite
        size_plan = self.__dict__.get("_size_plan")
        if size_plan is not None:
            # Replayed span: the stable portion (record skeleton, stable
            # parameter lists, pattern id) was sized once when the plan
            # was learned; only the per-span variables remain.
            fixed, var_spec = size_plan
            size = fixed
            for key, is_list in var_spec:
                value = params[key]
                if is_list:
                    size += _param_list_size(value)
                elif value.__class__ is float and isfinite(value):
                    size += len(repr(value))
                else:
                    size += json_value_size(value)
        else:
            size = _record_base_size(tuple(params))
            size += _cached_str_size(self.pattern_id)
            for value in params.values():
                cls = value.__class__
                if cls is float:
                    if isfinite(value):
                        size += len(repr(value))
                    else:
                        size += len(dumps(value))
                elif cls is list:
                    size += _param_list_size(value)
                else:
                    size += json_value_size(value)
        parent_id = self.parent_id
        if parent_id is None:
            size += 4
        else:
            size += len(parent_id) + 2 if search(parent_id) is None else len(dumps(parent_id))
        for text in (self.trace_id, self.span_id):
            if text.isalnum() and text.isascii():  # hex ids: no escapes
                size += len(text) + 2
            else:
                size += len(text) + 2 if search(text) is None else len(dumps(text))
        size += _cached_str_size(self.node)
        start_time = self.start_time
        if start_time.__class__ is float and isfinite(start_time):
            size += len(repr(start_time))
        else:
            size += json_value_size(start_time)
        return size


# Base encoded size of a params record per distinct param key set: the
# braces, key strings and punctuation that every record with those keys
# shares.  Derived once from the real JSON ruler (a probe record with
# zero-size variable slots) so the fast sizer cannot drift from it.
_RECORD_BASE_CACHE: dict[tuple[str, ...], int] = {}

# Encoded size per parameter-fill list, keyed by object identity: value
# memos and span plans share one list object per distinct attribute
# value, so the same list is sized for thousands of spans.  The entry
# keeps a strong reference to the list, which both pins the id and
# guarantees the identity check stays valid.  Bounded; misses just
# recompute.
_LIST_SIZE_CACHE: dict[int, tuple[list, int]] = {}
_LIST_SIZE_CACHE_CAP = 1 << 16

# Encoded size per repeated short string (node names, pattern ids):
# one dict hit instead of an escape scan per span.
_STR_SIZE_CACHE: dict[str, int] = {}
_STR_SIZE_CACHE_CAP = 1 << 12


def _cached_str_size(text: str) -> int:
    size = _STR_SIZE_CACHE.get(text)
    if size is None:
        size = (
            len(text) + 2
            if JSON_ESCAPE_RE.search(text) is None
            else len(_json.dumps(text))
        )
        if len(_STR_SIZE_CACHE) < _STR_SIZE_CACHE_CAP:
            _STR_SIZE_CACHE[text] = size
    return size


def _param_list_size(value: list) -> int:
    """Exact JSON size of one parameter-fill list, memoised by identity."""
    entry = _LIST_SIZE_CACHE.get(id(value))
    if entry is not None and entry[0] is value:
        return entry[1]
    if value:
        search = JSON_ESCAPE_RE.search
        size = 1 + len(value)
        for item in value:
            if item.__class__ is str:
                # ASCII-alphanumeric needs no escaping; the two C-level
                # predicates are cheaper than the regex scan they skip.
                if item.isalnum() and item.isascii():
                    size += len(item) + 2
                else:
                    size += (
                        len(item) + 2 if search(item) is None else len(_json.dumps(item))
                    )
            else:
                size += json_value_size(item)
    else:
        size = 2
    if len(_LIST_SIZE_CACHE) < _LIST_SIZE_CACHE_CAP:
        _LIST_SIZE_CACHE[id(value)] = (value, size)
    return size


def _record_base_size(keys: tuple[str, ...]) -> int:
    base = _RECORD_BASE_CACHE.get(keys)
    if base is None:
        probe = {
            "trace_id": "",
            "span_id": "",
            "parent_id": None,
            "node": "",
            "pattern_id": "",
            "start_time": 0.0,
            "params": dict.fromkeys(keys),
        }
        # Placeholder payloads: four ``""`` (2 bytes), one ``null`` (4),
        # ``0.0`` (3), the empty pattern_id (2), and ``null`` per param.
        base = encoded_size(probe) - (2 + 2 + 4 + 2 + 2 + 3 + 4 * len(keys))
        _RECORD_BASE_CACHE[keys] = base
    return base


class SpanPatternLibrary:
    """The agent-side Pattern Library for span patterns.

    Besides the patterns themselves, the library tracks the observed
    exponential-bucket range of every numeric attribute per pattern —
    the data behind the bucket-mapped numeric display in approximate
    traces (paper Fig. 10).
    """

    def __init__(self, alpha: float = 0.5) -> None:
        self._patterns: dict[str, SpanPattern] = {}
        self._match_counts: dict[str, int] = {}
        # Structural key -> pattern id: repeated span shapes resolve to
        # their id with one dict lookup, never re-hashing the content.
        self._interned: dict[tuple, str] = {}
        self._bucketer = NumericBucketer(alpha=alpha)
        self._numeric_ranges: dict[str, dict[str, tuple[float, float]]] = {}

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pattern_id: str) -> bool:
        return pattern_id in self._patterns

    @staticmethod
    def _structural_key(pattern: SpanPattern) -> tuple:
        return (
            pattern.name,
            pattern.service,
            pattern.kind,
            pattern.status,
            pattern.attributes,
        )

    def bump(self, pattern_id: str) -> None:
        """Count one more span matched to an already-interned pattern."""
        self._match_counts[pattern_id] += 1

    def register(self, pattern: SpanPattern) -> str:
        """Add (or re-find) ``pattern``; returns its id and bumps the
        match counter either way."""
        key = self._structural_key(pattern)
        pattern_id = self._interned.get(key)
        if pattern_id is None:
            pattern_id = pattern.pattern_id
            self._interned[key] = pattern_id
            if pattern_id not in self._patterns:
                self._patterns[pattern_id] = pattern
        self._match_counts[pattern_id] = self._match_counts.get(pattern_id, 0) + 1
        return pattern_id

    def intern(
        self,
        name: str,
        service: str,
        kind: str,
        status: str,
        attributes: tuple[tuple[str, str, str], ...],
    ) -> str:
        """Resolve a span shape to its pattern id, constructing (and
        content-hashing) a :class:`SpanPattern` only on first sight.

        This is the parser's hot path: after the first occurrence of a
        shape, identity costs one tuple build and one dict lookup
        instead of a ``repr`` plus SHA1 per span.  Ids are identical to
        :meth:`register`'s — the content hash still defines identity, so
        the backend's cross-agent merge invariant is untouched.
        """
        key = (name, service, kind, status, attributes)
        pattern_id = self._interned.get(key)
        if pattern_id is None:
            return self.register(
                SpanPattern(
                    name=name,
                    service=service,
                    kind=kind,
                    status=status,
                    attributes=attributes,
                )
            )
        self._match_counts[pattern_id] += 1
        return pattern_id

    def get(self, pattern_id: str) -> SpanPattern:
        """Pattern by id; raises KeyError when unknown."""
        return self._patterns[pattern_id]

    def match_count(self, pattern_id: str) -> int:
        """How many spans matched this pattern so far."""
        return self._match_counts.get(pattern_id, 0)

    def observe_numeric(self, pattern_id: str, key: str, value: float) -> None:
        """Fold ``value``'s bucket into the pattern's observed range."""
        ranges_hit = self._numeric_ranges.get(pattern_id)
        if ranges_hit is not None:
            current = ranges_hit.get(key)
            # Envelope edges are bucket-aligned, so a value strictly
            # inside the envelope cannot extend it: its whole bucket is
            # already covered.  Ranges converge after a few spans, so
            # this skips the bucket math for nearly every span.  A
            # positive value may sit exactly on the upper edge (buckets
            # are (lower, upper]); negative values mirror the interval,
            # so their far edge must take the slow path.
            if current is not None and current[0] < value:
                upper = current[1]
                if value < upper or (0.0 < value == upper):
                    return
        bucket = self._bucketer.bucket_of(value)
        lower = -bucket.upper if bucket.negative else bucket.lower
        upper = -bucket.lower if bucket.negative else bucket.upper
        ranges = self._numeric_ranges.setdefault(pattern_id, {})
        current = ranges.get(key)
        if current is None:
            ranges[key] = (lower, upper)
        else:
            ranges[key] = (min(current[0], lower), max(current[1], upper))

    def numeric_ranges(self, pattern_id: str) -> dict[str, tuple[float, float]]:
        """Observed (lower, upper] bucket envelope per numeric key."""
        return dict(self._numeric_ranges.get(pattern_id, {}))

    def pattern_dict(self, pattern_id: str) -> dict[str, Any]:
        """Serialisable pattern including its current numeric ranges."""
        data = self._patterns[pattern_id].to_dict()
        ranges = self._numeric_ranges.get(pattern_id)
        if ranges:
            data["numeric_ranges"] = {k: list(v) for k, v in sorted(ranges.items())}
        return data

    def patterns(self) -> list[SpanPattern]:
        """All patterns in insertion order."""
        return list(self._patterns.values())

    def snapshot(self) -> tuple[str, ...]:
        """Immutable view of the interned pattern ids, insertion order.

        The cheap identity summary the concurrent plane's introspection
        and the cross-worker interning property tests compare: ids are
        content hashes, so equal id tuples mean equal libraries.
        """
        return tuple(self._patterns)

    def size_bytes(self) -> int:
        """Upload size of the whole library."""
        return encoded_size([self.pattern_dict(pid) for pid in self._patterns])


class SpanParser:
    """Parses raw spans into span patterns plus parameters."""

    def __init__(
        self,
        similarity_threshold: float = 0.8,
        alpha: float = 0.5,
        scope_by_operation: bool = True,
    ) -> None:
        """``scope_by_operation`` trains one parser per (service,
        operation, key); disabling it trains one parser per key across
        all operations, which is what makes the similarity threshold a
        live tradeoff (paper Fig. 16): loose thresholds then merge
        values from different operations into wildcard-heavy templates
        whose parameters carry the bytes."""
        self.similarity_threshold = similarity_threshold
        self.alpha = alpha
        self.scope_by_operation = scope_by_operation
        self.library = SpanPatternLibrary(alpha=alpha)
        self._string_parsers: dict[str, StringAttributeParser] = {}
        # (service, operation) -> ({attribute key -> parser}, volatile
        # key set): resolves the per-attribute parser without rebuilding
        # the scope string on every span (the scope-string form stays
        # authoritative in ``_string_parsers`` for the warm-up path),
        # and snapshots which attributes are high-cardinality.
        self._op_parsers: dict[
            tuple[str, str] | None, tuple[dict[str, StringAttributeParser], set[str]]
        ] = {}
        # Whole-span fast path: spans whose string values have all been
        # seen (and value-cached) before resolve to a precomputed plan
        # — pattern id, parameter layout and hit-count bumps — keyed by
        # the span's structural identity plus its exact string values.
        # Only registered when every constituent lookup is guaranteed
        # stable, so a plan hit is byte-identical to a full parse.
        self._span_plans: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Offline stage (paper Section 3.2.1)
    # ------------------------------------------------------------------
    def warm_up(self, spans: Iterable[Span]) -> None:
        """Build per-attribute parsers from a sample of raw spans.

        Parsers are scoped per (service, operation, attribute key):
        values of the same key from different operations share skeleton
        shape but differ in operation-specific constants, and clustering
        them together would fragment templates into wildcard confetti
        that stores those constants as parameters on every span.
        """
        string_values: dict[str, list[str]] = {}
        warmup_spans = list(spans)
        for span in warmup_spans:
            for key, value in span.string_attributes().items():
                scope = self._scope(span, key)
                string_values.setdefault(scope, []).append(value)
        for scope, values in string_values.items():
            parser = self._string_parser(scope)
            parser.warm_up(values)
        # Register the span patterns of the warm-up sample so the library
        # starts populated (mitigates the cold-start issue the paper notes).
        for span in warmup_spans:
            self.parse(span)

    # ------------------------------------------------------------------
    # Online stage (paper Section 3.2.2)
    # ------------------------------------------------------------------
    def parse(self, span: Span, observe_ranges: bool = True) -> ParsedSpan:
        """Hierarchical Attribute Parsing of one raw span.

        Every attribute is parsed independently (the paper runs these in
        parallel; sequential here, same result), then the attribute
        patterns are combined and looked up in the Pattern Library.

        ``observe_ranges=False`` defers numeric-range tracking to the
        caller (the agent withholds range updates for traces it ends up
        sampling, so pattern ranges describe the *common* case and are
        not widened by the very outliers whose exact values are kept).
        """
        attributes = span.attributes
        op_key = (span.service, span.name) if self.scope_by_operation else None
        state = self._op_parsers.get(op_key)
        if state is None:
            state = ({}, set())
            self._op_parsers[op_key] = state
        op_parsers, vol_set = state
        plan = self._span_plans.get(_plan_key(span, attributes, vol_set))
        if plan is not None:
            return self._parse_from_plan(span, plan, attributes, observe_ranges)
        return self._parse_full(span, op_parsers, vol_set, observe_ranges)

    # Bounded so adversarial high-cardinality attribute values cannot
    # grow the plan table without limit (vocabulary-stable traffic fits
    # comfortably; everything else falls back to the full parse).
    _SPAN_PLAN_CAP = 16384
    # Distinct-values-per-attribute threshold above which an attribute
    # is treated as volatile (the parser's value memo is the counter).
    _VOLATILE_DISTINCT = 32

    def _parse_full(
        self,
        span: Span,
        op_parsers: dict[str, StringAttributeParser],
        vol_set: set[str],
        observe_ranges: bool,
    ) -> ParsedSpan:
        """The reference parse path; also learns a replay plan.

        Volatility is (re)classified here from the live parser memos —
        ``vol_set`` is updated in place, so the plan is stored under the
        key every future lookup will build.
        """
        attributes = span.attributes
        entries: list[tuple[str, str, str]] = []
        params: dict[str, ParamValue] = {}
        numeric_values: dict[str, float] = {}
        plan_slots: list[tuple] = []
        plan_bumps: list[tuple] = []
        list_keys: list[str] = []
        plan_ok = True
        for key, value in sorted(attributes.items()):
            if key.startswith("__"):
                raise ValueError(f"attribute key {key!r} uses the reserved prefix")
            if isinstance(value, (str, bool)):
                text = value if value.__class__ is str else str(value)
                parser = self._attribute_parser(op_parsers, span, key)
                parsed = parser.parse(text)
                entries.append((key, parsed.kind, parsed.pattern))
                params[key] = parsed.param
                list_keys.append(key)
                if key in vol_set or len(parser._value_cache) > self._VOLATILE_DISTINCT:
                    vol_set.add(key)
                    plan_slots.append(
                        (key, _VOLATILE_SLOT, parser, parsed.pattern, len(entries) - 1)
                    )
                else:
                    cached = parser._value_cache.get(text)
                    if cached is not None and cached[0] is parsed:
                        plan_slots.append((key, cached[1], parsed.param))
                        # Flattened bump slot: the count cell and ranked
                        # list are mutated in place and never rebound,
                        # so a replayed span bumps without hashing.
                        plan_bumps.append(
                            (
                                parser._hit_counts[cached[1]],
                                parser._hot_ranked,
                                cached[1],
                                parser,
                            )
                        )
                    else:
                        # Value fell outside the parser's memo (cache at
                        # capacity): this shape cannot be replayed safely.
                        plan_ok = False
            else:
                entries.append((key, "numeric", NUMERIC_MARKER))
                params[key] = float(value)
                numeric_values[key] = float(value)
                plan_slots.append((key, _NUMERIC_SLOT))
        entries.append((DURATION_KEY, "numeric", NUMERIC_MARKER))
        params[DURATION_KEY] = span.duration
        numeric_values[DURATION_KEY] = span.duration
        pattern_id = self.library.intern(
            span.name,
            span.service,
            span.kind.value,
            span.status.value,
            tuple(sorted(entries)),
        )
        if plan_ok and len(self._span_plans) < self._SPAN_PLAN_CAP:
            # Storage key built from the (possibly just-updated)
            # classification — exactly what the next lookup for this
            # shape will compute.
            plan_key = _plan_key(span, attributes, vol_set)
            # Pre-size the constant part of the params record: skeleton,
            # pattern id, and every stable parameter list.
            size_fixed = _record_base_size(tuple(params)) + _cached_str_size(pattern_id)
            var_spec: list[tuple[str, bool]] = []
            vol_slots: list[tuple] = []
            params_template = dict(params)
            for slot in plan_slots:
                marker = slot[1]
                if marker is _NUMERIC_SLOT:
                    var_spec.append((slot[0], False))
                    params_template[slot[0]] = None
                elif marker is _VOLATILE_SLOT:
                    var_spec.append((slot[0], True))
                    params_template[slot[0]] = None
                    vol_slots.append((slot[0], slot[2], slot[3], slot[4]))
                else:
                    size_fixed += _param_list_size(slot[2])
            var_spec.append((DURATION_KEY, False))
            params_template[DURATION_KEY] = None
            self._span_plans[plan_key] = (
                pattern_id,
                tuple(vol_slots),
                tuple(k for k in numeric_values if k != DURATION_KEY),
                tuple(plan_bumps),
                tuple(entries),
                (span.name, span.service, span.kind.value, span.status.value),
                (size_fixed, tuple(var_spec)),
                params_template,
                tuple(list_keys),
            )
        if observe_ranges:
            for key, value in numeric_values.items():
                self.library.observe_numeric(pattern_id, key, value)
        return ParsedSpan(
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_id=span.parent_id,
            node=span.node,
            start_time=span.start_time,
            pattern_id=pattern_id,
            params=params,
        )

    def _parse_from_plan(
        self,
        span: Span,
        plan: tuple,
        attributes: dict[str, Any],
        observe_ranges: bool,
    ) -> ParsedSpan:
        """Replay a previously parsed span shape.

        Byte-identical to the full parse by construction: the plan's
        pattern id, parameter layout and templates were produced by the
        full path, and are immutable once the constituent stable values
        sit in their parsers' permanent value memos.  Volatile
        (high-cardinality) attributes are re-parsed through their
        parser exactly as the full path would; if one lands on a
        different template than the plan recorded, the entries are
        rebuilt and re-interned so the result never diverges from the
        reference path.  All bookkeeping the full path performs —
        template hit counts, pattern match counts, numeric range
        observation — is replayed too, so downstream sampling decisions
        are unchanged.
        """
        (
            pattern_id,
            vol_slots,
            numeric_keys,
            bumps,
            entries_proto,
            header,
            size_info,
            params_template,
            list_keys,
        ) = plan
        # The template holds the stable parameters in the reference key
        # order; per-span slots (None placeholders) are overwritten in
        # place, so the copy's key order matches a full parse exactly.
        params: dict[str, ParamValue] = dict(params_template)
        substitutions: list[tuple[int, tuple[str, str, str]]] | None = None
        for key, parser, expected_pattern, entry_index in vol_slots:
            value = attributes[key]
            text = value if value.__class__ is str else str(value)
            parsed_attr = parser.parse(text)
            params[key] = parsed_attr.param
            if parsed_attr.pattern != expected_pattern:
                if substitutions is None:
                    substitutions = []
                substitutions.append((entry_index, (key, "string", parsed_attr.pattern)))
        for key in numeric_keys:
            value = attributes[key]
            params[key] = value if value.__class__ is float else float(value)
        duration = span.duration
        params[DURATION_KEY] = duration
        for cell, ranked, template, parser in bumps:
            if ranked and ranked[0] is template:
                cell[0] += 1
            else:
                parser._record_hit(template)
        if substitutions is None:
            self.library.bump(pattern_id)
        else:
            entries = list(entries_proto)
            for index, entry in substitutions:
                entries[index] = entry
            pattern_id = self.library.intern(*header, tuple(sorted(entries)))
        if observe_ranges:
            observe = self.library.observe_numeric
            for key in numeric_keys:
                observe(pattern_id, key, float(attributes[key]))
            observe(pattern_id, DURATION_KEY, duration)
        # Direct construction: the dataclass __init__ is a measurable
        # per-span cost; the instance dict is assigned wholesale (the
        # extra _size_plan entry is not a field, so repr/eq semantics
        # are untouched).  Skipped for the rare re-interned shape, whose
        # pattern id no longer matches the plan's pre-sized layout.
        parsed = ParsedSpan.__new__(ParsedSpan)
        instance_dict = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "node": span.node,
            "start_time": span.start_time,
            "pattern_id": pattern_id,
            "params": params,
            # Which params are wildcard-fill lists — lets downstream
            # scans (symptom sampler) skip the per-param type dispatch.
            "_param_lists": list_keys,
        }
        if substitutions is None:
            instance_dict["_size_plan"] = size_info
        parsed.__dict__ = instance_dict
        return parsed

    def parse_many(
        self, spans: Iterable[Span], observe_ranges: bool = True
    ) -> list[ParsedSpan]:
        """Parse a batch of raw spans (same results as looped
        :meth:`parse`; the per-operation parser caches make repeated
        shapes in the batch cost dict lookups only)."""
        parse = self.parse
        return [parse(span, observe_ranges) for span in spans]

    def _scope(self, span: Span, key: str) -> str:
        """Parser scope: per (service, operation, key) by default."""
        if self.scope_by_operation:
            return f"{span.service}|{span.name}|{key}"
        return key

    def _attribute_parser(
        self,
        op_parsers: dict[str, StringAttributeParser],
        span: Span,
        key: str,
    ) -> StringAttributeParser:
        parser = op_parsers.get(key)
        if parser is None:
            parser = self._string_parser(self._scope(span, key))
            op_parsers[key] = parser
        return parser

    def _string_parser(self, key: str) -> StringAttributeParser:
        parser = self._string_parsers.get(key)
        if parser is None:
            parser = StringAttributeParser(key, self.similarity_threshold)
            self._string_parsers[key] = parser
        return parser


# ----------------------------------------------------------------------
# Reconstruction helpers (backend side, stateless)
# ----------------------------------------------------------------------
def reconstruct_exact_span(pattern: SpanPattern, parsed: ParsedSpan) -> Span:
    """Rebuild the original span from its pattern and parameters.

    Inverse of :meth:`SpanParser.parse`: operates on pattern text alone
    so the backend does not need parser state.
    """
    attributes: dict[str, Any] = {}
    duration = 0.0
    for key, kind, pattern_text in pattern.attributes:
        param = parsed.params[key]
        if kind == "string":
            template = template_from_text(pattern_text)
            if not isinstance(param, list):
                raise TypeError(f"string attribute {key!r} carries {type(param)}")
            value: Any = template.reconstruct(param)
        else:
            if isinstance(param, list):
                raise TypeError(f"numeric attribute {key!r} carries a list")
            value = float(param)
        if key == DURATION_KEY:
            duration = float(value)
        else:
            attributes[key] = value
    return Span(
        trace_id=parsed.trace_id,
        span_id=parsed.span_id,
        parent_id=parsed.parent_id,
        name=pattern.name,
        service=pattern.service,
        kind=SpanKind(pattern.kind),
        start_time=parsed.start_time,
        duration=duration,
        status=SpanStatus(pattern.status),
        node=parsed.node,
        attributes=attributes,
    )


def approximate_span_view(
    pattern: SpanPattern,
    numeric_ranges: dict[str, tuple[float, float]] | None = None,
) -> dict[str, Any]:
    """The masked span view returned for unsampled traces (paper Fig. 10).

    String variables appear as ``<*>``; numeric values appear as their
    observed bucket interval when ranges were reported with the pattern.
    """
    return {
        "name": pattern.name,
        "service": pattern.service,
        "kind": pattern.kind,
        "status": pattern.status,
        "duration": pattern.duration_pattern(numeric_ranges),
        "attributes": pattern.masked_attributes(numeric_ranges),
    }
