"""Greedy single-pass clustering of string attribute values.

Paper Section 3.2.1: *"for all possible values of the same string-type
attribute in sampled spans, we aggregate values with similarity above a
threshold (0.8 in our implementation) to form clusters."*

We use leader clustering: each value joins the first existing cluster
whose representative is similar enough, otherwise it founds a new
cluster.  Leader clustering is order-dependent but O(n * k) instead of
O(n^2), matching what an agent can afford online; determinism is kept by
processing values in the caller-supplied order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.parsing.lcs import token_similarity
from repro.parsing.tokenizer import tokenize, word_tokens


@dataclass
class StringCluster:
    """A group of mutually similar attribute values."""

    representative_tokens: list[str]
    members: list[str] = field(default_factory=list)
    member_tokens: list[list[str]] = field(default_factory=list)

    def add(self, value: str, tokens: list[str]) -> None:
        """Record ``value`` (pre-tokenised as ``tokens``) in the cluster."""
        self.members.append(value)
        self.member_tokens.append(tokens)


def cluster_strings(
    values: Iterable[str],
    threshold: float = 0.8,
    max_clusters: int | None = None,
) -> list[StringCluster]:
    """Cluster ``values`` by LCS token similarity.

    Parameters
    ----------
    values:
        Attribute values, processed in iteration order.
    threshold:
        Minimum :func:`token_similarity` (over *word* tokens) between a
        value and a cluster representative for the value to join the
        cluster.  The paper default is 0.8.
    max_clusters:
        Optional safety cap; when reached, further unmatched values join
        their nearest cluster instead of founding new ones.

    Returns
    -------
    list[StringCluster]
        Clusters in founding order.  Every input value is a member of
        exactly one cluster.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    clusters: list[StringCluster] = []
    for value in values:
        tokens = tokenize(value)
        words = word_tokens(tokens)
        best_index = -1
        best_score = -1.0
        for index, cluster in enumerate(clusters):
            score = token_similarity(words, word_tokens(cluster.representative_tokens))
            if score > best_score:
                best_score = score
                best_index = index
            if score >= threshold:
                # Leader clustering: first adequate cluster wins.
                best_index = index
                break
        joined = best_index >= 0 and best_score >= threshold
        at_cap = max_clusters is not None and len(clusters) >= max_clusters
        if joined or (at_cap and best_index >= 0):
            clusters[best_index].add(value, tokens)
        else:
            cluster = StringCluster(representative_tokens=tokens)
            cluster.add(value, tokens)
            clusters.append(cluster)
    return clusters


def cluster_sizes(clusters: Sequence[StringCluster]) -> list[int]:
    """Member counts per cluster, in cluster order."""
    return [len(c.members) for c in clusters]
