"""Commonality + variability parsing: the paper's core contribution.

Two levels of parsing (paper Section 3):

* **inter-span** (:mod:`repro.parsing.span_parser`) — each attribute of a
  span is split into a common *pattern* and variable *parameters*;
  co-occurring attribute patterns form span patterns.
* **inter-trace** (:mod:`repro.parsing.trace_parser`) — per-node
  sub-traces are encoded as topology patterns over span pattern ids.
"""

from repro.parsing.attribute_parser import (
    AttributeParser,
    NumericAttributeParser,
    ParsedAttribute,
    StringAttributeParser,
)
from repro.parsing.clustering import cluster_strings
from repro.parsing.lcs import lcs_length, lcs_tokens, token_similarity
from repro.parsing.numeric_buckets import NumericBucketer
from repro.parsing.prefix_tree import TemplatePrefixTree
from repro.parsing.span_parser import ParsedSpan, SpanParser, SpanPattern, SpanPatternLibrary
from repro.parsing.string_patterns import StringTemplate, extract_template
from repro.parsing.tokenizer import detokenize, tokenize
from repro.parsing.trace_parser import ParsedSubTrace, TopoPattern, TopoPatternLibrary, TraceParser

__all__ = [
    "tokenize",
    "detokenize",
    "lcs_length",
    "lcs_tokens",
    "token_similarity",
    "cluster_strings",
    "StringTemplate",
    "extract_template",
    "NumericBucketer",
    "TemplatePrefixTree",
    "AttributeParser",
    "StringAttributeParser",
    "NumericAttributeParser",
    "ParsedAttribute",
    "SpanParser",
    "SpanPattern",
    "SpanPatternLibrary",
    "ParsedSpan",
    "TraceParser",
    "TopoPattern",
    "TopoPatternLibrary",
    "ParsedSubTrace",
]
