"""String templates: the common patterns extracted from value clusters.

Paper Section 3.2.1: *"For each cluster C_i, we extract the shortest
regular expression that can represent all strings in the cluster, which
serves as the pattern P_i for that cluster."*

A :class:`StringTemplate` is a token sequence where variable positions
are the wildcard ``<*>``.  It compiles to an anchored regular expression
(wildcards become lazy groups), supports parameter extraction and exact
reconstruction: ``template.reconstruct(template.extract(v)) == v`` for
any matching ``v``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from repro.parsing.clustering import StringCluster
from repro.parsing.lcs import lcs_tokens
from repro.parsing.tokenizer import detokenize

WILDCARD = "<*>"


@dataclass(frozen=True)
class StringTemplate:
    """An immutable template of literal tokens and ``<*>`` wildcards."""

    tokens: tuple[str, ...]

    def __post_init__(self) -> None:
        # Collapse runs of consecutive wildcards: `<*><*>` matches the
        # same language as `<*>` but would create ambiguous parameter
        # splits during extraction.
        collapsed: list[str] = []
        for token in self.tokens:
            if token == WILDCARD and collapsed and collapsed[-1] == WILDCARD:
                continue
            collapsed.append(token)
        tokens = tuple(collapsed)
        object.__setattr__(self, "tokens", tokens)
        object.__setattr__(self, "_regex", self._compile())
        # Templates are immutable and sit on the parse hot path as dict
        # keys and ranking candidates: precompute what every lookup and
        # hot-match probe would otherwise recount.
        wildcards = tokens.count(WILDCARD)
        object.__setattr__(self, "wildcard_count", wildcards)
        object.__setattr__(self, "literal_token_count", len(tokens) - wildcards)
        object.__setattr__(self, "text", detokenize(list(tokens)))
        object.__setattr__(self, "_hash", hash(tokens))

    def __hash__(self) -> int:
        return self._hash

    def _compile(self) -> re.Pattern[str]:
        parts: list[str] = ["^"]
        literal_run: list[str] = []
        for token in self.tokens:
            if token == WILDCARD:
                if literal_run:
                    parts.append(re.escape(detokenize(literal_run)))
                    literal_run = []
                parts.append("(.*?)")
            else:
                literal_run.append(token)
        if literal_run:
            parts.append(re.escape(detokenize(literal_run)))
        parts.append("$")
        return re.compile("".join(parts), re.DOTALL)

    # ``text`` (human-readable template string, e.g. ``select * from
    # <*>``) is a precomputed instance attribute set in ``__post_init__``
    # — it is attached to every parsed attribute, so recomputing it per
    # parse would dominate novel-value parsing.

    # ``wildcard_count`` (number of variable positions) and
    # ``literal_token_count`` (specificity score) are precomputed
    # instance attributes, set in ``__post_init__``.

    def matches(self, value: str) -> bool:
        """True when ``value`` is in the language of this template."""
        return self._regex.match(value) is not None

    def extract(self, value: str) -> list[str] | None:
        """Extract the wildcard parameters from ``value``.

        Returns one string per wildcard (possibly empty strings), or
        ``None`` when the value does not match the template.
        """
        match = self._regex.match(value)
        if match is None:
            return None
        return list(match.groups())

    def reconstruct(self, params: Sequence[str]) -> str:
        """Substitute ``params`` back into the wildcards.

        The inverse of :func:`extract`: for a matching value ``v``,
        ``reconstruct(extract(v)) == v``.
        """
        if len(params) != self.wildcard_count:
            raise ValueError(
                f"template has {self.wildcard_count} wildcards, "
                f"got {len(params)} parameters"
            )
        out: list[str] = []
        param_iter = iter(params)
        for token in self.tokens:
            if token == WILDCARD:
                out.append(next(param_iter))
            else:
                out.append(token)
        return "".join(out)

    def masked(self) -> str:
        """The approximate-trace rendering: wildcards shown as ``<*>``."""
        return self.text


@lru_cache(maxsize=4096)
def template_from_text(text: str) -> StringTemplate:
    """Rebuild a template from its rendered text.

    ``<*>`` survives tokenisation when delimiter-separated; when a
    wildcard abuts a word with no delimiter (``exec<*>``), the combined
    token is split back apart so wildcard counts round-trip exactly.

    Pure text -> immutable template, so the result is memoised: exact
    reconstruction calls this once per pattern attribute per *query*,
    and the tokenise + regex-compile round-trip dominated the query
    hot path before the cache (the distinct-template population is the
    pattern library's, i.e. small and convergent).
    """
    from repro.parsing.tokenizer import tokenize

    tokens: list[str] = []
    for token in tokenize(text):
        if WILDCARD in token and token != WILDCARD:
            tokens.extend(_split_embedded_wildcards(token))
        else:
            tokens.append(token)
    return StringTemplate(tokens=tuple(tokens))


def _split_embedded_wildcards(token: str) -> list[str]:
    """Split ``abc<*>def`` into ``['abc', '<*>', 'def']``."""
    parts: list[str] = []
    rest = token
    while WILDCARD in rest:
        before, _, rest = rest.partition(WILDCARD)
        if before:
            parts.append(before)
        parts.append(WILDCARD)
    if rest:
        parts.append(rest)
    return parts


def extract_template(cluster: StringCluster) -> StringTemplate:
    """Build the template covering every member of ``cluster``.

    The common part is the fold of pairwise LCS over member token lists;
    a wildcard is inserted at every gap position where at least one
    member carries extra tokens.  This is the shortest template (fewest
    wildcards over the maximal common subsequence) representable in our
    template language that matches all members.
    """
    if not cluster.member_tokens:
        raise ValueError("cannot extract a template from an empty cluster")
    # The common part converges after a handful of members; folding the
    # LCS over every member of a large cluster is O(members * n^2) for
    # no additional precision.  A stratified sample (first, last, and a
    # spread in between) is folded instead, and the full membership is
    # still used for gap detection and the final match check below.
    sample = _member_sample(cluster.member_tokens, limit=12)
    common: list[str] = list(sample[0])
    for tokens in sample[1:]:
        common = lcs_tokens(common, tokens)
        if not common:
            break
    gap_has_variance = [False] * (len(common) + 1)
    for tokens in cluster.member_tokens:
        for gap_index, gap_len in _gap_lengths(common, tokens):
            if gap_len > 0:
                gap_has_variance[gap_index] = True
    template_tokens: list[str] = []
    for index, token in enumerate(common):
        if gap_has_variance[index]:
            template_tokens.append(WILDCARD)
        template_tokens.append(token)
    if gap_has_variance[len(common)]:
        template_tokens.append(WILDCARD)
    if not template_tokens:
        template_tokens = [WILDCARD]
    template = StringTemplate(tokens=tuple(template_tokens))
    # LCS alignment is not always consistent with greedy regex matching;
    # widen any template that fails to match one of its own members.
    for member in cluster.members:
        if not template.matches(member):
            return StringTemplate(tokens=(WILDCARD,))
    return template


def _member_sample(members: list[list[str]], limit: int) -> list[list[str]]:
    """A deterministic spread of at most ``limit`` members."""
    if len(members) <= limit:
        return members
    step = len(members) / limit
    return [members[int(i * step)] for i in range(limit)]


def _gap_lengths(common: list[str], tokens: list[str]) -> list[tuple[int, int]]:
    """Token counts in each gap when aligning ``common`` inside ``tokens``.

    Gap ``i`` sits before common token ``i``; gap ``len(common)`` is the
    suffix after the last common token.  Alignment is greedy
    left-to-right, which is consistent for subsequences produced by LCS.
    """
    gaps: list[tuple[int, int]] = []
    pos = 0
    for index, literal in enumerate(common):
        try:
            found = tokens.index(literal, pos)
        except ValueError:
            # `common` is not a subsequence under greedy alignment; treat
            # the remainder as one variable gap.
            gaps.append((index, len(tokens) - pos))
            return gaps
        gaps.append((index, found - pos))
        pos = found + 1
    gaps.append((len(common), len(tokens) - pos))
    return gaps
