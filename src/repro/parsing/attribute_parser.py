"""Per-attribute parsers: one parser per attribute key.

Paper Section 3.2.1: *"Since different attributes have different
semantics, to speed up the parsing stage, we train a separate parser for
each attribute to avoid meaningless comparisons between different
semantics."*

String attributes are handled by :class:`StringAttributeParser` (LCS
clustering + templates in a prefix tree); numeric attributes by
:class:`NumericAttributeParser` (closed-form exponential bucketing).
Both support the online update path: a value that matches no existing
pattern either widens a sufficiently similar template or founds a new
one.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Union

from repro.parsing.clustering import StringCluster, cluster_strings
from repro.parsing.lcs import token_similarity
from repro.parsing.numeric_buckets import Bucket, NumericBucketer
from repro.parsing.prefix_tree import TemplatePrefixTree
from repro.parsing.string_patterns import StringTemplate, extract_template
from repro.parsing.tokenizer import tokenize, word_tokens

# How many raw member values each template remembers, used to re-derive
# a wider template when a near-miss value arrives online.
_REPRESENTATIVES_PER_TEMPLATE = 5

ParamValue = Union[list[str], float]


class ParsedAttribute(NamedTuple):
    """Result of parsing one attribute value.

    ``pattern`` is the common part (template text or bucket label) and
    ``param`` the variable part (wildcard fills or numeric offset).
    A NamedTuple rather than a dataclass: one is built per parsed
    attribute on the ingest hot path, and tuple construction is several
    times cheaper than a frozen dataclass ``__init__``.
    """

    key: str
    kind: str  # "string" | "numeric"
    pattern: str
    param: ParamValue


class StringAttributeParser:
    """Parser for one string-valued attribute key."""

    # Exact-value memo bound: repeated values (constant attributes,
    # small vocabularies) should cost one dict lookup, not a tree walk.
    _VALUE_CACHE_CAP = 4096
    # How many hit-ranked templates to try with a direct regex match
    # before falling back to the prefix-tree walk.
    _HOT_TEMPLATES = 5

    def __init__(self, key: str, similarity_threshold: float = 0.8) -> None:
        self.key = key
        self.similarity_threshold = similarity_threshold
        self._tree = TemplatePrefixTree()
        self._representatives: dict[StringTemplate, list[str]] = {}
        # Exact value -> (parsed result, template).  Caching the parsed
        # result (not just the template) lets repeated values skip the
        # regex extraction entirely; the ParsedAttribute is immutable
        # and its params list is never mutated by consumers.
        self._value_cache: dict[str, tuple[ParsedAttribute, StringTemplate]] = {}
        # Hit counts as single-element mutable cells: a bump is a C-level
        # ``cell[0] += 1`` with no template hashing on the hot path.
        self._hit_counts: dict[StringTemplate, list[int]] = {}
        # Top-K templates by hit count, maintained incrementally with
        # the exact order of ``sorted(hit_counts, key=-count)`` (ties by
        # first-hit order) so the hot path never re-sorts per miss.
        self._hit_order: dict[StringTemplate, int] = {}
        self._hot_ranked: list[StringTemplate] = []

    @property
    def templates(self) -> list[StringTemplate]:
        """All templates currently known to this parser."""
        return self._tree.templates()

    # Clustering more sampled values than this per key adds nothing but
    # quadratic LCS cost; the offline stage is a warm start, not a scan.
    _WARMUP_VALUE_CAP = 300

    def warm_up(self, values: Iterable[str]) -> None:
        """Offline stage: cluster sampled values and extract templates."""
        seen: set[str] = set()
        distinct: list[str] = []
        for value in values:
            if value not in seen:
                seen.add(value)
                distinct.append(value)
            if len(distinct) >= self._WARMUP_VALUE_CAP:
                break
        for cluster in cluster_strings(distinct, threshold=self.similarity_threshold):
            template = extract_template(cluster)
            self._register(template, cluster.members)

    # A hot-path match is only trusted when the wildcard fills cover at
    # most this fraction of the value; wider matches fall through to
    # the full (most-specific) search.
    _HOT_PARAM_MASS_LIMIT = 0.3

    def parse(self, value: str) -> ParsedAttribute:
        """Online stage: match ``value`` or update the parser.

        Returns the matched (or newly created) pattern plus the wildcard
        parameters extracted from the value.  Hot paths first: an
        exact-value memo, then a direct regex check of the most-hit
        templates (accepted only when the extracted parameters are a
        small fraction of the value — a wide template matching
        everything must not swallow whole clauses as parameters), then
        the prefix-tree walk.
        """
        cached = self._value_cache.get(value)
        if cached is not None:
            parsed, template = cached
            self._record_hit(template)
            return parsed
        template, params = self._hot_match_extract(value)
        if params is not None and not self._acceptable_mass(value, params):
            template, params = None, None
        if params is None:
            tokens = tokenize(value)
            template = self._tree.find_match(value, tokens)
            if template is None:
                template = self._linear_match(value)
            if template is not None:
                params = template.extract(value)
            # A degenerate match (e.g. a catch-all template absorbing
            # most of the value as parameters) is worse than learning a
            # proper template for this value's shape.
            if (
                template is None
                or params is None
                or not self._acceptable_mass(value, params)
            ):
                template = self._learn(value, tokens)
                params = template.extract(value)
        if params is None:  # pragma: no cover - matching guarantees extraction
            raise RuntimeError(f"template failed on {value!r}")
        assert template is not None
        self._record_hit(template)
        parsed = ParsedAttribute(
            key=self.key, kind="string", pattern=template.text, param=params
        )
        if len(self._value_cache) < self._VALUE_CACHE_CAP:
            self._value_cache[value] = (parsed, template)
        return parsed

    @classmethod
    def _acceptable_mass(cls, value: str, params: list[str]) -> bool:
        if not value:
            return True
        mass = sum(map(len, params))
        return mass <= cls._HOT_PARAM_MASS_LIMIT * len(value)

    def _record_hit(self, template: StringTemplate) -> None:
        """Bump ``template``'s hit count and restore the top-K order.

        Maintains ``_hot_ranked`` as exactly the first ``_HOT_TEMPLATES``
        entries of ``sorted(self._hit_counts.items(), key=-count)`` —
        counts descending, ties broken by first-hit order, matching the
        stable sort this replaced.  A bump moves one template at most a
        few positions, so the amortised cost is O(K) dict lookups
        instead of an O(n log n) sort per parsed value.
        """
        counts = self._hit_counts
        ranked = self._hot_ranked
        if ranked and ranked[0] is template:
            # Already the hottest template: a bump cannot change the
            # order, so skip the maintenance entirely (the warm-path
            # common case).
            counts[template][0] += 1
            return
        cell = counts.get(template)
        if cell is None:
            counts[template] = cell = [1]
            count = 1
            self._hit_order[template] = len(self._hit_order)
        else:
            cell[0] = count = cell[0] + 1
        order = self._hit_order
        try:
            index = ranked.index(template)
        except ValueError:
            if len(ranked) < self._HOT_TEMPLATES:
                ranked.append(template)
                index = len(ranked) - 1
            else:
                last = ranked[-1]
                last_count = counts[last][0]
                if count > last_count or (
                    count == last_count and order[template] < order[last]
                ):
                    ranked[-1] = template
                    index = len(ranked) - 1
                else:
                    return
        seq = order[template]
        while index > 0:
            prev = ranked[index - 1]
            prev_count = counts[prev][0]
            if prev_count > count or (prev_count == count and order[prev] < seq):
                break
            ranked[index - 1], ranked[index] = template, prev
            index -= 1

    def _hot_match_extract(
        self, value: str
    ) -> tuple[StringTemplate | None, list[str] | None]:
        """Try the most frequently matched templates directly.

        Only templates with at least one wildcard are tried here: a
        fully-literal template matching means the value is identical,
        which the value memo already covers.  Each candidate is probed
        with a single regex pass that also yields the parameters, so the
        winning template is never matched twice.
        """
        best: StringTemplate | None = None
        best_params: list[str] | None = None
        for template in self._hot_ranked:
            if template.wildcard_count and (
                best is None
                or template.literal_token_count > best.literal_token_count
            ):
                params = template.extract(value)
                if params is not None:
                    best = template
                    best_params = params
        return best, best_params

    def template_for_pattern(self, pattern: str) -> StringTemplate | None:
        """Look up a template object by its text (for reconstruction)."""
        for template in self._tree.templates():
            if template.text == pattern:
                return template
        return None

    def _linear_match(self, value: str) -> StringTemplate | None:
        """Fallback scan for values the token walk fails to route."""
        best: StringTemplate | None = None
        for template in self._tree.templates():
            if template.matches(value):
                if best is None or template.literal_token_count > best.literal_token_count:
                    best = template
        return best

    def _learn(self, value: str, tokens: list[str]) -> StringTemplate:
        """Online update: widen the nearest template or found a new one."""
        words = word_tokens(tokens)
        best_template: StringTemplate | None = None
        best_score = -1.0
        for template, reps in self._representatives.items():
            for rep in reps:
                score = token_similarity(words, word_tokens(tokenize(rep)))
                if score > best_score:
                    best_score = score
                    best_template = template
        if best_template is not None and best_score >= self.similarity_threshold:
            members = list(self._representatives[best_template]) + [value]
            cluster = StringCluster(representative_tokens=tokenize(members[0]))
            for member in members:
                cluster.add(member, tokenize(member))
            widened = extract_template(cluster)
            self._replace(best_template, widened, members)
            return widened
        literal = StringTemplate(tokens=tuple(tokens))
        self._register(literal, [value])
        return literal

    def _register(self, template: StringTemplate, members: list[str]) -> None:
        self._tree.insert(template)
        reps = self._representatives.setdefault(template, [])
        for member in members:
            if member not in reps and len(reps) < _REPRESENTATIVES_PER_TEMPLATE:
                reps.append(member)

    def _replace(
        self, old: StringTemplate, new: StringTemplate, members: list[str]
    ) -> None:
        if new == old:
            reps = self._representatives.setdefault(old, [])
            for member in members:
                if member not in reps and len(reps) < _REPRESENTATIVES_PER_TEMPLATE:
                    reps.append(member)
            return
        # The old template stays in the tree (other stored spans may
        # reference its text); the new, wider one is added alongside.
        self._register(new, members)


class NumericAttributeParser:
    """Parser for one numeric attribute key."""

    def __init__(self, key: str, alpha: float = 0.5) -> None:
        self.key = key
        self._bucketer = NumericBucketer(alpha=alpha)

    @property
    def bucketer(self) -> NumericBucketer:
        """The underlying exponential bucketer."""
        return self._bucketer

    def warm_up(self, values: Iterable[float]) -> None:
        """Offline stage is a no-op: the mapping formula is closed-form."""

    def parse(self, value: float) -> ParsedAttribute:
        """Split ``value`` into its bucket label and lower-bound offset."""
        bucket = self._bucketer.bucket_of(value)
        param = abs(value) - bucket.lower
        return ParsedAttribute(
            key=self.key, kind="numeric", pattern=bucket.label, param=param
        )

    def bucket_for_pattern(self, pattern: str) -> Bucket | None:
        """Rebuild a bucket from its label (for reconstruction)."""
        text = pattern
        negative = text.startswith("-")
        if negative:
            text = text[1:]
        if not (text.startswith("(") and text.endswith("]")):
            return None
        try:
            lower_s, upper_s = text[1:-1].split(",")
            lower = float(lower_s)
            upper = float(upper_s)
        except ValueError:
            return None
        if upper == 0:
            return Bucket(index=0, negative=False, lower=0.0, upper=0.0)
        index = self._bucketer.index_of(upper) if upper > 0 else 0
        return Bucket(index=index, negative=negative, lower=lower, upper=upper)

    def reconstruct(self, pattern: str, param: float) -> float:
        """Exact value from bucket label + offset."""
        bucket = self.bucket_for_pattern(pattern)
        if bucket is None:
            raise ValueError(f"not a bucket label: {pattern!r}")
        magnitude = bucket.lower + param
        return -magnitude if bucket.negative else magnitude


AttributeParser = Union[StringAttributeParser, NumericAttributeParser]
