"""Longest common subsequence over token lists.

Implements the similarity from paper Eq. (1):

    delta(s1, s2) = |LCS(s1, s2)| / max(|s1|, |s2|)

where ``s1`` and ``s2`` are tokenized strings and ``|.|`` counts tokens.
"""

from __future__ import annotations

from typing import Sequence


def lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length (in tokens) of the longest common subsequence of ``a``, ``b``.

    Uses the classic O(len(a) * len(b)) dynamic program with a rolling
    row, which is fast enough for attribute values (tens of tokens).
    """
    if not a or not b:
        return 0
    # Ensure the inner loop runs over the shorter sequence.
    if len(b) > len(a):
        a, b = b, a
    prev = [0] * (len(b) + 1)
    for token_a in a:
        curr = [0] * (len(b) + 1)
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                curr[j] = prev[j - 1] + 1
            else:
                curr[j] = max(prev[j], curr[j - 1])
        prev = curr
    return prev[-1]


def lcs_tokens(a: Sequence[str], b: Sequence[str]) -> list[str]:
    """One longest common subsequence of ``a`` and ``b`` as a token list.

    When several LCSs exist, the one found by backtracking the standard
    DP table (preferring moves up, then left) is returned; the choice is
    deterministic for fixed inputs.
    """
    if not a or not b:
        return []
    rows = len(a) + 1
    cols = len(b) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(1, rows):
        for j in range(1, cols):
            if a[i - 1] == b[j - 1]:
                table[i][j] = table[i - 1][j - 1] + 1
            else:
                table[i][j] = max(table[i - 1][j], table[i][j - 1])
    out: list[str] = []
    i, j = len(a), len(b)
    while i > 0 and j > 0:
        if a[i - 1] == b[j - 1]:
            out.append(a[i - 1])
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    out.reverse()
    return out


def token_similarity(a: Sequence[str], b: Sequence[str]) -> float:
    """Paper Eq. (1): normalised LCS length in [0, 1].

    Two empty sequences are identical (similarity 1); an empty sequence
    against a non-empty one scores 0.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return lcs_length(a, b) / longest
