"""Exponential-interval bucketing of numeric attribute values.

Paper Section 3.2.1: choose a precision parameter alpha (0.5 by
default), let gamma = (1 + alpha) / (1 - alpha); a value ``d`` falls in
bucket ``i = ceil(log_gamma(d))`` so bucket ``B_i`` covers
``(gamma^(i-1), gamma^i]``, with ``B_0`` covering ``(0, 1]``.

The variable parameter recorded for a bucketed value is the *difference
from the interval's lower bound* (Section 3.2.2), which makes exact
reconstruction possible for sampled traces while unsampled traces keep
only the bucket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Bucket:
    """One exponential interval ``(lower, upper]`` with its index.

    ``index`` carries a sign flag for negative inputs and the special
    values handled beyond the paper (zero), see
    :meth:`NumericBucketer.bucket_of`.
    """

    index: int
    negative: bool
    lower: float
    upper: float

    @property
    def label(self) -> str:
        """Interval rendering used in approximate traces, e.g. ``(27, 81]``."""
        sign = "-" if self.negative else ""
        return f"{sign}({_fmt(self.lower)}, {_fmt(self.upper)}]"

    @property
    def midpoint(self) -> float:
        """Error-minimising representative for approximate reconstruction.

        The harmonic mean of the bucket ends, ``2*l*u/(l+u)``, equalises
        the relative error at both ends to ``(gamma-1)/(gamma+1) ==
        alpha`` — the arithmetic midpoint would exceed alpha near the
        lower end.  Bucket 0 (``(0, 1]``) has no positive lower end, so
        its representative is ``upper/2``.
        """
        if self.upper == 0:
            return 0.0
        if self.lower == 0:
            mid = self.upper / 2.0
        else:
            mid = 2.0 * self.lower * self.upper / (self.lower + self.upper)
        return -mid if self.negative else mid


def _fmt(x: float) -> str:
    if x == int(x):
        return str(int(x))
    return f"{x:.6g}"


def parse_bucket_label(label: str) -> tuple[bool, float, float]:
    """Parse ``(lower, upper]`` (optionally ``-`` prefixed) back into
    ``(negative, lower, upper)``.

    Raises ``ValueError`` for strings that are not bucket labels, so the
    backend can reconstruct numeric values from pattern text alone.
    """
    text = label.strip()
    negative = text.startswith("-")
    if negative:
        text = text[1:]
    if not (text.startswith("(") and text.endswith("]")):
        raise ValueError(f"not a bucket label: {label!r}")
    lower_s, _, upper_s = text[1:-1].partition(",")
    if not _:
        raise ValueError(f"not a bucket label: {label!r}")
    return negative, float(lower_s), float(upper_s)


def reconstruct_from_label(label: str, parameter: float) -> float:
    """Exact value from a bucket label plus the stored offset."""
    negative, lower, _ = parse_bucket_label(label)
    magnitude = lower + parameter
    return -magnitude if negative else magnitude


class NumericBucketer:
    """Maps numbers to exponential buckets and back.

    Parameters
    ----------
    alpha:
        Precision in (0, 1).  Larger alpha means wider buckets (coarser
        approximation, better aggregation).  The paper default is 0.5,
        giving gamma = 3.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        # Buckets are value objects fully determined by (index, sign);
        # the hot ingest path maps millions of values onto a handful of
        # indices, so construction is memoised.
        self._bucket_cache: dict[tuple[int, bool], Bucket] = {}

    def index_of(self, value: float) -> int:
        """Bucket index for a positive magnitude, clamped at 0.

        Values in ``(0, 1]`` all map to bucket 0 per the paper.
        """
        if value <= 0:
            raise ValueError("index_of expects a positive magnitude")
        raw = math.ceil(math.log(value) / self._log_gamma)
        # Guard against float error putting gamma**k barely above k.
        if raw > 0 and value <= self.gamma ** (raw - 1) * (1 + 1e-12):
            raw -= 1
        return max(0, raw)

    def bucket_of(self, value: float) -> Bucket:
        """Bucket containing ``value``.

        Extensions beyond the paper (which only discusses positive
        values): zero gets the degenerate bucket ``[0, 0]``; negative
        values are bucketed by magnitude with a sign flag.
        """
        if value == 0:
            return Bucket(index=0, negative=False, lower=0.0, upper=0.0)
        negative = value < 0
        magnitude = abs(value)
        index = self.index_of(magnitude)
        key = (index, negative)
        bucket = self._bucket_cache.get(key)
        if bucket is None:
            lower = 0.0 if index == 0 else self.gamma ** (index - 1)
            upper = self.gamma**index
            bucket = Bucket(index=index, negative=negative, lower=lower, upper=upper)
            self._bucket_cache[key] = bucket
        return bucket

    def bucket_by_index(self, index: int, negative: bool = False) -> Bucket:
        """Rebuild a bucket from its stored index (for decoding)."""
        if index < 0:
            raise ValueError(f"bucket index must be >= 0, got {index}")
        lower = 0.0 if index == 0 else self.gamma ** (index - 1)
        upper = self.gamma**index
        return Bucket(index=index, negative=negative, lower=lower, upper=upper)

    def parameter_of(self, value: float) -> float:
        """Variable part: offset of ``value`` above its bucket's lower bound."""
        bucket = self.bucket_of(value)
        return abs(value) - bucket.lower

    def reconstruct(self, bucket: Bucket, parameter: float) -> float:
        """Exact value from bucket + parameter (inverse of the split)."""
        magnitude = bucket.lower + parameter
        return -magnitude if bucket.negative else magnitude

    def relative_error_bound(self) -> float:
        """Worst-case relative error of midpoint approximation.

        For bucket ``(l, gamma*l]`` the midpoint is off by at most
        ``(gamma - 1) / (gamma + 1) == alpha`` relative to the true
        value, which is why the paper calls alpha the precision.
        """
        return self.alpha
