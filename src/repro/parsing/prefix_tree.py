"""Prefix tree over string templates.

Paper Section 3.2.1 ("Parsers building"): *"For string attributes, we
use a prefix tree to store all patterns (i.e., regular expressions).
Since different patterns can share several prefix tokens, their paths
may overlap.  This reduces the storage overhead of patterns and improves
matching efficiency during the online phase."*

Nodes are keyed by template tokens (wildcard included); a template is a
root-to-marked-node path.  Matching walks the tree against a tokenised
value, letting wildcard edges consume any number of tokens, and returns
the most specific matching template (most literal tokens).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.parsing.string_patterns import WILDCARD, StringTemplate


@dataclass
class _Node:
    children: dict[str, "_Node"] = field(default_factory=dict)
    template: StringTemplate | None = None


class TemplatePrefixTree:
    """Stores string templates with shared-prefix compression."""

    def __init__(self) -> None:
        self._root = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[StringTemplate]:
        return iter(self.templates())

    def insert(self, template: StringTemplate) -> bool:
        """Add ``template``; returns False when it was already present."""
        node = self._root
        for token in template.tokens:
            node = node.children.setdefault(token, _Node())
        if node.template is not None:
            return False
        node.template = template
        self._count += 1
        return True

    def __contains__(self, template: StringTemplate) -> bool:
        node = self._root
        for token in template.tokens:
            child = node.children.get(token)
            if child is None:
                return False
            node = child
        return node.template is not None

    def templates(self) -> list[StringTemplate]:
        """All stored templates in depth-first order."""
        out: list[StringTemplate] = []
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.template is not None:
                out.append(node.template)
            stack.extend(node.children[k] for k in sorted(node.children, reverse=True))
        return out

    def find_match(self, value: str, tokens: list[str]) -> StringTemplate | None:
        """Most specific stored template matching ``value``.

        ``tokens`` must be ``tokenize(value)``; the walk uses tokens to
        prune the tree, then confirms candidates against the raw string
        (wildcard semantics are defined by the template's regex).
        """
        candidates: list[StringTemplate] = []
        self._walk(self._root, tokens, 0, candidates, set())
        best: StringTemplate | None = None
        for template in candidates:
            if not template.matches(value):
                continue
            if best is None or template.literal_token_count > best.literal_token_count:
                best = template
        return best

    def _walk(
        self,
        node: _Node,
        tokens: list[str],
        pos: int,
        out: list[StringTemplate],
        visited: set[tuple[int, int]],
    ) -> None:
        # Wildcard edges make (node, pos) states reachable along many
        # paths; memoising them keeps the walk linear in practice.
        state = (id(node), pos)
        if state in visited:
            return
        visited.add(state)
        if node.template is not None and pos == len(tokens):
            out.append(node.template)
        # A wildcard template may also terminate with trailing input;
        # delegate final say to regex confirmation by collecting any
        # terminal node whose remaining requirement is only wildcards.
        if node.template is not None and pos < len(tokens):
            if node.template.tokens and node.template.tokens[-1] == WILDCARD:
                out.append(node.template)
        for token, child in node.children.items():
            if token == WILDCARD:
                # Wildcard edge: consume zero or more tokens.
                for nxt in range(pos, len(tokens) + 1):
                    self._walk(child, tokens, nxt, out, visited)
            elif pos < len(tokens) and tokens[pos] == token:
                self._walk(child, tokens, pos + 1, out, visited)

    def node_count(self) -> int:
        """Number of nodes — the prefix-sharing storage footprint."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
