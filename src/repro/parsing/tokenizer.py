"""Tokenisation of string attribute values.

The paper computes LCS similarity over *tokenized strings (using words
as tokens)*.  We split on whitespace but keep common structural
delimiters (punctuation found in SQL, URLs and code identifiers) as
their own tokens, so that e.g. ``v1/campus/user=42`` and
``v1/campus/user=97`` share the tokens ``v1 / campus / user =`` and
differ only in the final parameter token.
"""

from __future__ import annotations

import re

# Delimiters that separate words in SQL text, URLs, key=value pairs and
# code identifiers.  Each delimiter becomes its own token so templates
# keep the structure around the variable parts.  Underscore, dash and
# dot split compound identifiers (``patch_inventory``, ``scheduling-1``)
# so their common stems count towards LCS similarity.  ``<``, ``>`` and
# ``*`` are deliberately NOT delimiters: the wildcard token ``<*>`` must
# survive tokenisation intact for template round-tripping.
_DELIMITERS = r"([\s,;=\(\)\[\]\{\}\?&/:\-_.'\"@#!|+]+)"

_SPLIT_RE = re.compile(_DELIMITERS)
_WHITESPACE_RE = re.compile(r"^\s+$")


def tokenize(value: str) -> list[str]:
    """Split ``value`` into word and delimiter tokens.

    Whitespace-only fragments are normalised to a single space token so
    that re-joining (:func:`detokenize`) produces a canonical string.

    >>> tokenize("select * from A")
    ['select', ' ', '*', ' ', 'from', ' ', 'A']
    """
    tokens: list[str] = []
    for fragment in _SPLIT_RE.split(value):
        if not fragment:
            continue
        if _WHITESPACE_RE.match(fragment):
            tokens.append(" ")
        else:
            tokens.append(fragment)
    return tokens


def detokenize(tokens: list[str]) -> str:
    """Reassemble tokens into a string (inverse of :func:`tokenize` up to
    whitespace normalisation)."""
    return "".join(tokens)


def word_tokens(tokens: list[str]) -> list[str]:
    """Filter out pure-delimiter tokens, keeping only words.

    Similarity is computed over words so that heavy punctuation does not
    dominate the LCS score.
    """
    return [t for t in tokens if not _SPLIT_RE.fullmatch(t)]
