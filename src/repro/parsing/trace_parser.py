"""The Trace Parser: inter-trace commonality + variability analysis.

Paper Section 3.3: spans sharing a trace id on one node form a
*sub-trace*; its topology — the order and hierarchy of span patterns —
is encoded as a topo pattern and matched (exactly) against the Topo
Pattern Library.  Trace metadata is then mounted onto the matched
pattern via a Bloom filter (that part lives in :mod:`repro.agent`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any

from repro.model.encoding import encoded_size
from repro.model.span import SpanKind
from repro.model.trace import SubTrace
from repro.parsing.span_parser import ParsedSpan, SpanParser

# A topo-pattern tree node: (span_pattern_id, (child_node, ...)).
TopoNode = tuple[str, tuple["TopoNode", ...]]


@dataclass(frozen=True)
class TopoPattern:
    """Topology pattern of a sub-trace.

    ``roots`` is the canonical forest over span pattern ids — it encodes
    the parent -> children vector from paper Fig. 8 (children are kept
    as canonically-sorted multisets, so two sub-traces that differ only
    in sibling interleaving share a pattern).  ``entry_ops`` /
    ``exit_ops`` are the (service, operation) pairs the backend uses for
    upstream/downstream stitching (paper Section 6.2).
    """

    roots: tuple[TopoNode, ...]
    entry_ops: tuple[tuple[str, str], ...]
    exit_ops: tuple[tuple[str, str], ...]

    @cached_property
    def pattern_id(self) -> str:
        """Stable content-derived id (shared across agents and runs).

        Computed once per pattern object; repeated topologies never
        reach it because :meth:`TopoPatternLibrary.register` interns
        patterns by structural equality first.
        """
        digest = hashlib.sha1(repr(self).encode("utf-8")).hexdigest()
        return digest[:16]

    def __hash__(self) -> int:
        # Patterns are dict keys on the per-sub-trace hot path; hashing
        # the nested tuples once per object (not per lookup) matters.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.roots, self.entry_ops, self.exit_ops))
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def span_pattern_ids(self) -> tuple[str, ...]:
        """All span pattern ids referenced, in pre-order."""
        out: list[str] = []

        def visit(node: TopoNode) -> None:
            out.append(node[0])
            for child in node[1]:
                visit(child)

        for root in self.roots:
            visit(root)
        return tuple(out)

    @property
    def span_count(self) -> int:
        """Number of spans in a sub-trace matching this pattern."""
        return len(self.span_pattern_ids)

    def to_dict(self) -> dict[str, Any]:
        """Serialisable form for upload accounting and backend rebuild."""
        return {
            "pattern_id": self.pattern_id,
            "roots": [_node_to_list(root) for root in self.roots],
            "entry_ops": [list(op) for op in self.entry_ops],
            "exit_ops": [list(op) for op in self.exit_ops],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TopoPattern":
        """Rebuild a pattern from :meth:`to_dict` output."""
        return cls(
            roots=tuple(_node_from_list(item) for item in data["roots"]),
            entry_ops=tuple(tuple(op) for op in data["entry_ops"]),
            exit_ops=tuple(tuple(op) for op in data["exit_ops"]),
        )


def _node_to_list(node: TopoNode) -> list[Any]:
    return [node[0], [_node_to_list(child) for child in node[1]]]


def _node_from_list(item: list[Any]) -> TopoNode:
    return (item[0], tuple(_node_from_list(child) for child in item[1]))


@dataclass
class ParsedSubTrace:
    """A sub-trace reduced to its topo pattern plus per-span parameters."""

    trace_id: str
    node: str
    topo_pattern_id: str
    parsed_spans: list[ParsedSpan] = field(default_factory=list)

    def params_size_bytes(self) -> int:
        """Bytes the sub-trace's parameters occupy in the Params Buffer."""
        return sum(p.params_size_bytes() for p in self.parsed_spans)


class TopoPatternLibrary:
    """The agent-side Pattern Library for topology patterns."""

    def __init__(self) -> None:
        self._patterns: dict[str, TopoPattern] = {}
        self._match_counts: dict[str, int] = {}
        # Structural interning: repeated topologies resolve to their id
        # by tuple hashing instead of a repr + SHA1 per sub-trace.
        self._interned: dict[TopoPattern, str] = {}
        self._total_matches = 0

    def __len__(self) -> int:
        return len(self._patterns)

    def __contains__(self, pattern_id: str) -> bool:
        return pattern_id in self._patterns

    def register(self, pattern: TopoPattern) -> str:
        """Exact-match lookup or insertion (paper: 'Matching or updating')."""
        pattern_id = self._interned.get(pattern)
        if pattern_id is None:
            pattern_id = pattern.pattern_id
            self._interned[pattern] = pattern_id
            if pattern_id not in self._patterns:
                self._patterns[pattern_id] = pattern
        self._match_counts[pattern_id] = self._match_counts.get(pattern_id, 0) + 1
        self._total_matches += 1
        return pattern_id

    def get(self, pattern_id: str) -> TopoPattern:
        """Pattern by id; raises KeyError when unknown."""
        return self._patterns[pattern_id]

    def match_count(self, pattern_id: str) -> int:
        """Sub-traces matched to this pattern so far."""
        return self._match_counts.get(pattern_id, 0)

    def total_matches(self) -> int:
        """All sub-traces processed (running counter; the edge-case
        sampler reads this per sub-trace, so it must not re-sum)."""
        return self._total_matches

    def patterns(self) -> list[TopoPattern]:
        """All patterns in insertion order."""
        return list(self._patterns.values())

    def snapshot(self) -> tuple[str, ...]:
        """Immutable view of the interned pattern ids, insertion order.

        Content-hashed ids make this a full identity summary — the
        concurrent plane's worker introspection compares these tuples
        across lanes without shipping the pattern objects."""
        return tuple(self._patterns)

    def size_bytes(self) -> int:
        """Upload size of the whole library."""
        return encoded_size([p.to_dict() for p in self._patterns.values()])


class TraceParser:
    """Groups parsed spans into sub-traces and extracts topo patterns."""

    def __init__(self, span_parser: SpanParser) -> None:
        self.span_parser = span_parser
        self.library = TopoPatternLibrary()

    def parse_sub_trace(self, sub_trace: SubTrace) -> ParsedSubTrace:
        """Parse every span, then encode and register the topology."""
        if not sub_trace.spans:
            raise ValueError("cannot parse an empty sub-trace")
        parsed = {span.span_id: self.span_parser.parse(span) for span in sub_trace}
        pattern = extract_topo_pattern(sub_trace, parsed)
        pattern_id = self.library.register(pattern)
        ordered = sorted(
            parsed.values(), key=lambda p: (p.start_time, p.span_id)
        )
        return ParsedSubTrace(
            trace_id=sub_trace.trace_id,
            node=sub_trace.node,
            topo_pattern_id=pattern_id,
            parsed_spans=ordered,
        )


# Sub-trace topologies repeat heavily under steady traffic; memoising
# each subtree's repr string avoids re-rendering the same nested tuples
# for every sub-trace's canonical child sort.  Bounded so a pathological
# stream of novel topologies cannot grow it without limit.
_NODE_REPR_CACHE: dict[TopoNode, str] = {}
_NODE_REPR_CACHE_CAP = 1 << 16


def _node_sort_key(node: TopoNode) -> str:
    key = _NODE_REPR_CACHE.get(node)
    if key is None:
        key = repr(node)
        if len(_NODE_REPR_CACHE) < _NODE_REPR_CACHE_CAP:
            _NODE_REPR_CACHE[node] = key
    return key


def _span_order(span) -> tuple[float, str]:
    """Deterministic span order (matches ``SubTrace.local_children``)."""
    return (span.start_time, span.span_id)


# Canonical sub-trace shape -> TopoPattern.  A topo pattern is fully
# determined by each span's pattern id, its parent's position (or
# absence) and its exit marker — never by timing or span ids — so the
# built pattern can be reused across sub-traces, agents and runs.
_TOPO_PATTERN_CACHE: dict[tuple, TopoPattern] = {}
_TOPO_PATTERN_CACHE_CAP = 1 << 14


def extract_topo_pattern(
    sub_trace: SubTrace, parsed: dict[str, ParsedSpan]
) -> TopoPattern:
    """Encode a sub-trace's topology as a :class:`TopoPattern`.

    ``parsed`` maps span id -> :class:`ParsedSpan` (for pattern ids).
    Children are sorted by canonical subtree signature so sibling
    interleaving does not create spurious patterns.
    """

    spans = sub_trace.spans
    if len(spans) == 1:
        # Single-span fragments are the most common sub-trace shape;
        # no child index or sorting is needed.
        span = spans[0]
        roots = ((parsed[span.span_id].pattern_id, ()),)
        entry_ops = ((span.service, span.name),)
        if span.kind in (SpanKind.CLIENT, SpanKind.PRODUCER):
            exit_ops: tuple[tuple[str, str], ...] = (
                (str(span.attributes.get("peer.service", "")), span.name),
            )
        else:
            exit_ops = ()
        return TopoPattern(roots=roots, entry_ops=entry_ops, exit_ops=exit_ops)
    # Multi-span sub-traces: resolve the canonical shape from the cache
    # before paying for tree construction and canonical sorts.
    index_by_id = {span.span_id: i for i, span in enumerate(spans)}
    shape_parts = []
    for span in spans:
        if span.kind in (SpanKind.CLIENT, SpanKind.PRODUCER):
            marker = str(span.attributes.get("peer.service", ""))
        else:
            marker = None
        parent_id = span.parent_id
        shape_parts.append(
            (
                parsed[span.span_id].pattern_id,
                -1 if parent_id is None else index_by_id.get(parent_id, -1),
                marker,
            )
        )
    shape_key = tuple(shape_parts)
    cached = _TOPO_PATTERN_CACHE.get(shape_key)
    if cached is not None:
        return cached
    # One pass builds the parent -> children index; the per-span
    # ``local_children`` scans this replaces were O(spans) each.
    by_parent: dict[str | None, list] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    local_ids = {span.span_id for span in spans}

    def build(span) -> TopoNode:
        kids = by_parent.get(span.span_id)
        if kids:
            if len(kids) > 1:
                kids = sorted(kids, key=_span_order)
            children = [build(kid) for kid in kids]
            if len(children) > 1:
                children.sort(key=_node_sort_key)
            return (parsed[span.span_id].pattern_id, tuple(children))
        return (parsed[span.span_id].pattern_id, ())

    entries = sorted(
        (
            s
            for s in spans
            if s.parent_id is None or s.parent_id not in local_ids
        ),
        key=_span_order,
    )
    roots = tuple(sorted((build(s) for s in entries), key=_node_sort_key))
    entry_ops = tuple(sorted({(s.service, s.name) for s in entries}))
    # Exit operations record the *callee* (peer.service attribute when
    # instrumented, else the operation name alone) so the backend can
    # match them against downstream segments' entry operations.
    exit_ops = tuple(
        sorted(
            {
                (str(s.attributes.get("peer.service", "")), s.name)
                for s in sub_trace
                if s.kind in (SpanKind.CLIENT, SpanKind.PRODUCER)
            }
        )
    )
    pattern = TopoPattern(roots=roots, entry_ops=entry_ops, exit_ops=exit_ops)
    if len(_TOPO_PATTERN_CACHE) < _TOPO_PATTERN_CACHE_CAP:
        _TOPO_PATTERN_CACHE[shape_key] = pattern
    return pattern
