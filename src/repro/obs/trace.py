"""The deterministic internal-tracing seam.

An :class:`Observer` is the one handle instrumented components hold.
It wraps a :class:`MetricsRegistry` and offers two timing domains:

* ``span(stage)`` / ``observe_wall`` — ``perf_counter`` wall-clock
  profiling.  Honest about machine noise; stripped from deterministic
  report snapshots.
* ``sim_span(stage)`` / ``observe_sim`` — durations read off a clock
  that ticks in simulated time (``SimClock.now`` or the transport's
  ``wire_now``).  Reading the clock is side-effect free — the
  ``wire_now`` discipline: instrumentation may *read* clocks, never
  pump them — so these series are bit-reproducible across identical
  seeded runs.

Components are handed :data:`NULL_OBSERVER` at construction and a real
observer only when the deployment enables observability.  The null
flavour returns no-op instruments, so hot paths cache their counter
handles once and pay a single attribute check (``observer.enabled``)
per timing block when observability is off — cheap enough to leave the
seam compiled in everywhere, including the parent side of the lane
plane (never inside lane workers).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    SIM_DOMAIN,
    WALL_DOMAIN,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Every stage histogram shares this name; the ``stage`` label names
#: the seam (parse, transport_deliver, net_queue_wait, epoch_barrier,
#: query_plan, query_reconstruct, cold_decode, cold_promote,
#: supervisor_park_replay).
STAGE_METRIC = "mint_stage_seconds"


class _Span:
    """A wall-clock timer context feeding one histogram."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._hist.observe(max(0.0, perf_counter() - self._start))


class _SimSpan:
    """A simulated-time timer context: reads the clock, never pumps it."""

    __slots__ = ("_hist", "_clock", "_start")

    def __init__(self, hist: Histogram, clock: Callable[[], float]) -> None:
        self._hist = hist
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_SimSpan":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._hist.observe(max(0.0, self._clock() - self._start))


class _NullInstrument:
    """Absorbs every instrument verb; also a no-op context manager."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class Observer:
    """The live observability handle: a registry plus timing contexts."""

    enabled = True

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- instrument handles (cacheable by hot paths) -------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        domain: str = WALL_DOMAIN,
        track_samples: bool = False,
        **labels: Any,
    ) -> Histogram:
        return self.registry.histogram(
            name, buckets=buckets, track_samples=track_samples, domain=domain, **labels
        )

    def stage_histogram(self, stage: str, domain: str = WALL_DOMAIN) -> Histogram:
        """The shared per-stage latency histogram for one seam."""
        return self.histogram(STAGE_METRIC, domain=domain, stage=stage)

    # -- one-shot verbs ------------------------------------------------
    def count(self, name: str, n: int = 1, **labels: Any) -> None:
        self.registry.counter(name, **labels).inc(n)

    def observe_wall(self, stage: str, seconds: float, **labels: Any) -> None:
        self.registry.histogram(
            STAGE_METRIC, domain=WALL_DOMAIN, stage=stage, **labels
        ).observe(seconds)

    def observe_sim(self, stage: str, seconds: float, **labels: Any) -> None:
        self.registry.histogram(
            STAGE_METRIC, domain=SIM_DOMAIN, stage=stage, **labels
        ).observe(seconds)

    # -- timer contexts ------------------------------------------------
    def span(self, stage: str, **labels: Any) -> _Span:
        """Wall-clock timer context for one stage."""
        return _Span(
            self.registry.histogram(
                STAGE_METRIC, domain=WALL_DOMAIN, stage=stage, **labels
            )
        )

    def sim_span(
        self, stage: str, clock: Callable[[], float], **labels: Any
    ) -> _SimSpan:
        """Simulated-time timer context for one stage (clock is read,
        never advanced)."""
        return _SimSpan(
            self.registry.histogram(
                STAGE_METRIC, domain=SIM_DOMAIN, stage=stage, **labels
            ),
            clock,
        )

    def snapshot(self, deterministic: bool = False) -> dict[str, Any]:
        return self.registry.snapshot(deterministic=deterministic)


class NullObserver(Observer):
    """The off switch: every verb is a no-op, every handle absorbs."""

    enabled = False

    def __init__(self) -> None:  # no registry — nothing is recorded
        self.registry = None  # type: ignore[assignment]

    def counter(self, name: str, **labels: Any) -> Any:
        return NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> Any:
        return NULL_INSTRUMENT

    def histogram(self, name: str, **kwargs: Any) -> Any:
        return NULL_INSTRUMENT

    def stage_histogram(self, stage: str, domain: str = WALL_DOMAIN) -> Any:
        return NULL_INSTRUMENT

    def count(self, name: str, n: int = 1, **labels: Any) -> None:
        pass

    def observe_wall(self, stage: str, seconds: float, **labels: Any) -> None:
        pass

    def observe_sim(self, stage: str, seconds: float, **labels: Any) -> None:
        pass

    def span(self, stage: str, **labels: Any) -> Any:
        return NULL_INSTRUMENT

    def sim_span(self, stage: str, clock: Callable[[], float], **labels: Any) -> Any:
        return NULL_INSTRUMENT

    def snapshot(self, deterministic: bool = False) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The shared disabled observer every component starts with.
NULL_OBSERVER = NullObserver()
