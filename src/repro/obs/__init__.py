"""The self-observability plane (PR 9).

One metrics registry (counters / gauges / fixed-bucket histograms with
``shard`` / ``lane`` / ``link`` / ``plane`` labels), a deterministic
internal-tracing seam over :class:`~repro.sim.clock.SimClock` and
``perf_counter``, and the export surfaces behind
``MintFramework.obs_report()``.

The plane's hard contract mirrors every other plane's: observability on
vs off is bit-identical on byte tables, meter series and query
signatures — instrumentation may read clocks, never pump them — and
the full registry's ingest overhead stays under the checked bound
(``benchmarks/perf/run_obs_bench.py --check``).
"""

from repro.obs.export import render_prometheus, report_to_json
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    SIM_DOMAIN,
    WALL_DOMAIN,
    Counter,
    Gauge,
    Histogram,
    LatencyStats,
    MetricsRegistry,
    format_labels,
)
from repro.obs.report import build_report, deterministic_report
from repro.obs.trace import NULL_OBSERVER, STAGE_METRIC, NullObserver, Observer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "SIM_DOMAIN",
    "WALL_DOMAIN",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyStats",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "STAGE_METRIC",
    "build_report",
    "deterministic_report",
    "format_labels",
    "render_prometheus",
    "report_to_json",
]
