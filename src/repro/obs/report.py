"""``obs_report()``: every plane's panels under one snapshot schema.

Before PR 9 each plane grew its own ad-hoc stats surface —
``net_stats()``, ``elastic_stats()``, ``cold_stats()``, the query
planner's :class:`~repro.query.planner.PlanStats`, per-shard ledger
rows.  Those accessors survive as thin delegates; this module folds
them, plus the live metrics registry, into one structured report.

Two flavours:

* the full report carries everything, wall-clock profiling included;
* the deterministic report strips wall-domain durations (machine
  noise) but keeps their counts — two identical seeded runs produce
  bit-identical deterministic reports, which the obs test suite pins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.framework import MintFramework


def build_report(
    framework: "MintFramework", deterministic: bool = False
) -> dict[str, Any]:
    """One structured snapshot of a framework's observable state."""
    ledger = framework.ledger
    report: dict[str, Any] = {
        "framework": framework.name,
        "deployment": framework.deployment.describe(),
        "observability": framework.observer.enabled,
        "ledger": {
            "network_bytes": ledger.network.total_bytes,
            "storage_bytes": ledger.storage.total_bytes,
            "physical_storage_bytes": framework.physical_storage_bytes,
            "retransmit_bytes": framework.retransmit_bytes,
            "migration_bytes": framework.migration_bytes,
            "push_bytes": framework.push_bytes,
        },
        "meters": {
            "network_per_minute": [
                [minute, nbytes]
                for minute, nbytes in ledger.network.per_minute_series()
            ],
            "storage_per_minute": [
                [minute, nbytes]
                for minute, nbytes in ledger.storage.per_minute_series()
            ],
        },
        "metrics": framework.observer.snapshot(deterministic=deterministic),
        # The pre-PR-9 surfaces, folded in as sub-sections (their
        # accessors remain and delegate to the same underlying state).
        "net": framework.net_stats(),
        "elastic": framework.elastic_stats(),
        "cold": framework.cold_stats(),
        "live": framework.live_stats(),
        "query": dict(framework.backend.plan_totals.as_dict()),
        "shards": [row.as_dict() for row in framework.shard_meter_rows()],
    }
    return report


def deterministic_report(framework: "MintFramework") -> dict[str, Any]:
    """The determinism-gated flavour: sim-domain state only."""
    return build_report(framework, deterministic=True)
