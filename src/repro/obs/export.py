"""Export surfaces: Prometheus-style text exposition and JSON dumps.

No HTTP server and no client library — the exposition format is plain
text and the point is scrape-ability of the *format*, not a daemon.
``render_prometheus`` walks a registry in sorted order so two identical
seeded runs emit byte-identical sim-domain series.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import MetricsRegistry, format_labels


def _merge_label(labels, extra_key: str, extra_value: str) -> str:
    items = tuple(sorted(labels + ((extra_key, extra_value),)))
    return format_labels(items)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (sorted, stable)."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for instrument in registry.instruments():
        name = instrument.name
        if instrument.kind == "counter":
            metric = name + "_total" if not name.endswith("_total") else name
            if metric not in seen_types:
                lines.append(f"# TYPE {metric} counter")
                seen_types.add(metric)
            lines.append(f"{metric}{format_labels(instrument.labels)} {instrument.value}")
        elif instrument.kind == "gauge":
            if name not in seen_types:
                lines.append(f"# TYPE {name} gauge")
                seen_types.add(name)
            lines.append(f"{name}{format_labels(instrument.labels)} {instrument.value}")
        else:  # histogram
            if name not in seen_types:
                lines.append(f"# TYPE {name} histogram")
                seen_types.add(name)
            for bound, count in instrument.bucket_counts():
                le = "+Inf" if bound is None else repr(bound)
                lines.append(
                    f"{name}_bucket{_merge_label(instrument.labels, 'le', le)} {count}"
                )
            labels = format_labels(instrument.labels)
            lines.append(f"{name}_sum{labels} {instrument.sum}")
            lines.append(f"{name}_count{labels} {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def report_to_json(report: dict[str, Any], indent: int | None = 2) -> str:
    """An ``obs_report()`` snapshot as canonical JSON."""
    return json.dumps(report, indent=indent, sort_keys=True)
