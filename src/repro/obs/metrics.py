"""The metrics registry: counters, gauges and fixed-bucket histograms.

One quantile codepath for the whole system.  :class:`Histogram` holds
fixed cumulative buckets plus (optionally) the raw samples; the net
plane's :class:`LatencyStats` is the sample-tracking flavour, so
``net_stats()`` percentile panels and obs histograms report through the
same nearest-rank implementation instead of two divergent ones.

Everything here is thread-safe (one small lock per instrument, same
discipline as :class:`repro.sim.meters.Meter`) so lane replay on the
parent and any future multi-threaded wire can share instruments.  All
instruments are cheap enough to leave on: an increment is a lock plus
an integer add, and the hot paths guard timing work behind a single
``observer.enabled`` attribute check.

Instruments carry a ``domain`` tag — ``"sim"`` for simulated-time
phenomena (deterministic across identical seeded runs) and ``"wall"``
for ``perf_counter`` profiling (machine noise by construction).  The
deterministic snapshot keeps sim-domain values and wall-domain *counts*
but strips wall-domain durations, which is what makes the obs-report
determinism gate meaningful.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterator

#: Wall-clock stage latencies: 10 µs .. 2 min, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.00001,
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
    120.0,
)

SIM_DOMAIN = "sim"
WALL_DOMAIN = "wall"

LabelItems = tuple[tuple[str, str], ...]


def format_labels(labels: "LabelItems | dict[str, Any]") -> str:
    """Prometheus-style ``{k="v",...}`` suffix (empty for no labels).

    Accepts either the registry's sorted label items or a plain dict
    (sorted here, so the rendering is canonical either way)."""
    if isinstance(labels, dict):
        labels = _label_items(labels)
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def _label_items(labels: dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing named count."""

    kind = "counter"

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative — counters never go down)."""
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += n


class Gauge:
    """A named value that can move in either direction."""

    kind = "gauge"

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n


class Histogram:
    """Fixed cumulative buckets plus optional raw samples.

    With ``track_samples`` the percentile is exact nearest-rank over the
    raw floats (the :class:`LatencyStats` contract); without it the
    percentile is resolved to the upper bound of the covering bucket —
    honest about its resolution, never an interpolated fiction.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str = "histogram",
        labels: LabelItems = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        track_samples: bool = False,
        domain: str = WALL_DOMAIN,
    ) -> None:
        self.name = name
        self.labels = labels
        self.domain = domain
        self._bounds: tuple[float, ...] = tuple(sorted(buckets))
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts: list[int] = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._track = track_samples
        self._samples: list[float] = []
        self._lock = threading.Lock()

    # -- write side ----------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation (non-negative seconds/units)."""
        if value < 0:
            raise ValueError("cannot record a negative latency")
        with self._lock:
            self._counts[bisect_left(self._bounds, value)] += 1
            self._count += 1
            self._sum += value
            if self._track:
                self._samples.append(value)

    # LatencyStats spelling — same instrument, historical verb.
    record = observe

    def merge(self, other: "Histogram") -> None:
        """Fold another instrument's observations into this one."""
        with self._lock:
            if other._bounds == self._bounds:
                for i, n in enumerate(other._counts):
                    self._counts[i] += n
            else:  # re-bucket through the samples when geometries differ
                for value in other._samples:
                    self._counts[bisect_left(self._bounds, value)] += 1
            self._count += other._count
            self._sum += other._sum
            if self._track:
                self._samples.extend(other._samples)

    def reset(self) -> None:
        """Drop all observations."""
        with self._lock:
            self._counts = [0] * (len(self._bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._samples.clear()

    # -- read side -----------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        if not self._count:
            return 0.0
        return self._sum / self._count

    def percentile(self, pct: float) -> float:
        """The single quantile codepath: exact nearest-rank when samples
        are tracked, covering-bucket upper bound otherwise."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError("pct must be in [0, 100]")
        if not self._count:
            return 0.0
        if self._track:
            ordered = sorted(self._samples)
            rank = max(
                0, min(len(ordered) - 1, round(pct / 100.0 * (len(ordered) - 1)))
            )
            return ordered[rank]
        target = max(1, round(pct / 100.0 * self._count))
        running = 0
        for i, n in enumerate(self._counts):
            running += n
            if running >= target:
                if i < len(self._bounds):
                    return self._bounds[i]
                return self._max_seen()
        return self._max_seen()  # pragma: no cover - loop always covers

    def _max_seen(self) -> float:
        """Upper estimate for the overflow bucket: the largest finite
        bound (or the observed mean when no bounds exist)."""
        return self._bounds[-1] if self._bounds else self.mean

    @property
    def p50(self) -> float:
        """Median in seconds."""
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        """99th percentile in seconds."""
        return self.percentile(99.0)

    def bucket_counts(self) -> list[tuple[float | None, int]]:
        """Cumulative ``(upper_bound, count)`` pairs; ``None`` = +Inf."""
        with self._lock:
            out: list[tuple[float | None, int]] = []
            running = 0
            for bound, n in zip(self._bounds, self._counts):
                running += n
                out.append((bound, running))
            out.append((None, self._count))
            return out

    def snapshot(self, deterministic: bool = False) -> dict[str, Any]:
        """One histogram as report JSON.  ``deterministic`` strips the
        wall-domain durations (machine noise) but keeps counts."""
        base: dict[str, Any] = {"count": self._count, "domain": self.domain}
        if deterministic and self.domain == WALL_DOMAIN:
            return base
        base.update(
            {
                "sum": self._sum,
                "mean": self.mean,
                "p50": self.p50,
                "p99": self.p99,
                "buckets": [
                    [bound, n] for bound, n in self.bucket_counts() if n
                ],
            }
        )
        return base

    def __getstate__(self) -> dict:
        """Pickle support: locks do not cross process boundaries."""
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class LatencyStats(Histogram):
    """Raw-sample latency instrument (exact percentiles).

    The historical net-plane/ingest-bench type, now a sample-tracking
    :class:`Histogram` so every percentile panel in the system shares
    one quantile implementation.
    """

    def __init__(
        self,
        name: str = "latency",
        labels: LabelItems = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        domain: str = WALL_DOMAIN,
    ) -> None:
        super().__init__(
            name, labels, buckets=buckets, track_samples=True, domain=domain
        )


class MetricsRegistry:
    """Named, labelled instruments with get-or-create semantics.

    One registry per framework instance — benchmarks run reference and
    candidate frameworks side by side in one process, so a module-level
    registry would cross-contaminate their panels.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, str, LabelItems], Any] = {}
        # One name, one kind — Prometheus exposition forbids a metric
        # name carrying two types, so the registry does too.
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, kind: str, name: str, labels: LabelItems, factory):
        key = (kind, name, labels)
        found = self._instruments.get(key)
        if found is not None:
            return found
        with self._lock:
            found = self._instruments.get(key)
            if found is None:
                registered = self._kinds.setdefault(name, kind)
                if registered != kind:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{registered}, cannot reuse the name for a {kind}"
                    )
                found = factory()
                self._instruments[key] = found
            return found

    def counter(self, name: str, **labels: Any) -> Counter:
        items = _label_items(labels)
        return self._get_or_create(
            "counter", name, items, lambda: Counter(name, items)
        )

    def gauge(self, name: str, **labels: Any) -> Gauge:
        items = _label_items(labels)
        return self._get_or_create("gauge", name, items, lambda: Gauge(name, items))

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        track_samples: bool = False,
        domain: str = WALL_DOMAIN,
        **labels: Any,
    ) -> Histogram:
        items = _label_items(labels)
        return self._get_or_create(
            "histogram",
            name,
            items,
            lambda: Histogram(
                name,
                items,
                buckets=buckets,
                track_samples=track_samples,
                domain=domain,
            ),
        )

    def instruments(self) -> Iterator[Any]:
        """All instruments, sorted by (kind, name, labels) for stable
        exposition and deterministic report snapshots."""
        with self._lock:
            keys = sorted(self._instruments)
        for key in keys:
            yield self._instruments[key]

    def snapshot(self, deterministic: bool = False) -> dict[str, Any]:
        """The registry as one report section."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        for instrument in self.instruments():
            key = instrument.name + format_labels(instrument.labels)
            if instrument.kind == "counter":
                counters[key] = instrument.value
            elif instrument.kind == "gauge":
                gauges[key] = instrument.value
            else:
                histograms[key] = instrument.snapshot(deterministic=deterministic)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
