"""Turning workload specs into concrete traces.

The generator plays the role of the instrumented application fleet:
every request picks an API by weight and emits the full span tree, with
client spans inserted at cross-node call edges (so sub-trace stitching
has entry/exit operations to match, as real OpenTelemetry SDKs do).
"""

from __future__ import annotations

import math
import random
from typing import Iterator

from repro.model.ids import IdGenerator
from repro.model.span import Span, SpanKind
from repro.model.trace import Trace
from repro.workloads.specs import ApiSpec, CallSpec, Workload


_RESOURCE_TEMPLATE = (
    "telemetry.sdk.name=opentelemetry telemetry.sdk.language=java "
    "telemetry.sdk.version=1.32.0 service.name={service} "
    "service.namespace=production service.instance.id={service}-0 "
    "deployment.environment=prod host.arch=amd64 host.name={node} "
    "os.type=linux os.description=Ubuntu-18.04-LTS process.runtime.name="
    "OpenJDK-Runtime-Environment process.runtime.version=17.0.9+9 "
    "container.runtime=containerd k8s.cluster.name=serving-primary "
    "k8s.namespace.name=apps k8s.deployment.name={service} "
    "instrumentation.scope=io.opentelemetry.instrumentation.{service} "
    "scope.version=2.1.0 schema.url=https://opentelemetry.io/schemas/1.24.0 "
    "exporter=otlp-grpc endpoint=collector.observability.svc.cluster.local "
    "batch.max.size=512 batch.timeout=5000ms compression=gzip-disabled "
    "span.processor=batch resource.detectors=env,host,os,process,container"
)


class TraceGenerator:
    """Deterministic trace factory for one workload.

    Every span also carries the ``otel.resource`` attribute: the
    OpenTelemetry resource/scope block real SDKs attach to exported
    spans.  It is constant per (service, node) — the dominant source of
    the commonality the paper measures in production traces.
    """

    def __init__(self, workload: Workload, seed: int = 0) -> None:
        self.workload = workload
        self._rng = random.Random(seed)
        self._ids = IdGenerator(seed=seed ^ 0xA5A5)
        self._resource_cache: dict[tuple[str, str], str] = {}

    def _resource_block(self, service: str, node: str) -> str:
        key = (service, node)
        cached = self._resource_cache.get(key)
        if cached is None:
            cached = _RESOURCE_TEMPLATE.format(service=service, node=node)
            self._resource_cache[key] = cached
        return cached

    def generate(self, api: ApiSpec, start_time: float = 0.0) -> Trace:
        """One complete trace for ``api`` starting at ``start_time``."""
        trace_id = self._ids.trace_id()
        spans: list[Span] = []
        self._emit(api.root, trace_id, None, None, start_time, spans)
        return Trace(trace_id=trace_id, spans=spans)

    def _emit(
        self,
        spec: CallSpec,
        trace_id: str,
        parent_span_id: str | None,
        parent_node: str | None,
        start_time: float,
        out: list[Span],
    ) -> float:
        """Emit the span(s) for ``spec``; returns the subtree duration."""
        node = self.workload.service_nodes[spec.service]
        client_span_id: str | None = None
        client_index: int | None = None
        if parent_node is not None and node != parent_node:
            # Cross-node call: the caller records a client span.
            client_span_id = self._ids.span_id()
            client_index = len(out)
            out.append(
                Span(
                    trace_id=trace_id,
                    span_id=client_span_id,
                    parent_id=parent_span_id,
                    name=spec.operation,
                    service=_caller_service(out, parent_span_id) or spec.service,
                    kind=SpanKind.CLIENT,
                    start_time=start_time,
                    duration=0.0,  # patched after the callee completes
                    node=parent_node,
                    attributes={
                        "peer.service": spec.service,
                        "otel.resource": self._resource_block(
                            _caller_service(out, parent_span_id) or spec.service,
                            parent_node,
                        ),
                    },
                )
            )
        server_span_id = self._ids.span_id()
        attributes = {
            key: attr_spec.generate(self._rng)
            for key, attr_spec in spec.attributes.items()
        }
        attributes["otel.resource"] = self._resource_block(spec.service, node)
        own = spec.own_duration_ms * math.exp(
            self._rng.gauss(0.0, spec.duration_spread)
        )
        if parent_span_id is None or node != parent_node:
            server_kind = SpanKind.SERVER
        else:
            server_kind = SpanKind.INTERNAL
        server_index = len(out)
        out.append(
            Span(
                trace_id=trace_id,
                span_id=server_span_id,
                parent_id=client_span_id if client_span_id else parent_span_id,
                name=spec.operation,
                service=spec.service,
                kind=server_kind,
                start_time=start_time,
                duration=0.0,  # patched below
                node=node,
                attributes=attributes,
            )
        )
        elapsed = own / 2.0
        children_duration = 0.0
        for child in spec.children:
            child_duration = self._emit(
                child, trace_id, server_span_id, node, start_time + elapsed, out
            )
            elapsed += child_duration
            children_duration += child_duration
        total = own + children_duration
        out[server_index] = _with_duration(out[server_index], total)
        if client_index is not None:
            network = 0.2 * math.exp(self._rng.gauss(0.0, 0.3))
            out[client_index] = _with_duration(out[client_index], total + network)
            return total + network
        return total


def _caller_service(spans: list[Span], parent_span_id: str | None) -> str | None:
    if parent_span_id is None:
        return None
    for span in spans:
        if span.span_id == parent_span_id:
            return span.service
    return None


def _with_duration(span: Span, duration: float) -> Span:
    return Span(
        trace_id=span.trace_id,
        span_id=span.span_id,
        parent_id=span.parent_id,
        name=span.name,
        service=span.service,
        kind=span.kind,
        start_time=span.start_time,
        duration=round(duration, 3),
        status=span.status,
        node=span.node,
        attributes=span.attributes,
    )


class WorkloadDriver:
    """Streams traces from a workload at a configured request rate."""

    def __init__(
        self,
        workload: Workload,
        seed: int = 0,
        requests_per_minute: float = 6000.0,
    ) -> None:
        if requests_per_minute <= 0:
            raise ValueError("requests_per_minute must be positive")
        self.workload = workload
        self.requests_per_minute = requests_per_minute
        self._generator = TraceGenerator(workload, seed=seed)
        self._rng = random.Random(seed ^ 0x17)
        self._weights = [api.weight for api in workload.apis]

    def traces(self, count: int, start_time: float = 0.0) -> Iterator[tuple[float, Trace]]:
        """Yield ``count`` (timestamp, trace) pairs at the request rate."""
        interval = 60.0 / self.requests_per_minute
        now = start_time
        for _ in range(count):
            api = self._rng.choices(self.workload.apis, weights=self._weights)[0]
            yield now, self._generator.generate(api, start_time=now)
            now += interval
