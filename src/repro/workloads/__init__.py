"""Workload generators standing in for the paper's benchmark systems.

Provides OnlineBoutique (10 services), TrainTicket (45 services), the
six Alibaba datasets A–F of Fig. 13, and the five sub-services of
Table 5 — all as synthetic trace generators whose attribute values have
the commonality/variability structure the paper measures in real
production traces.
"""

from repro.workloads.alibaba import DATASET_SPECS, SUBSERVICE_SPECS, build_dataset, build_subservice
from repro.workloads.faults import FaultInjector, FaultSpec, FaultType
from repro.workloads.generator import TraceGenerator, WorkloadDriver
from repro.workloads.onlineboutique import build_onlineboutique
from repro.workloads.queries import QueryWorkload, TraceRecord, incident_window_spec
from repro.workloads.specs import (
    ApiSpec,
    CallSpec,
    NumericAttributeSpec,
    StringAttributeSpec,
    Workload,
)
from repro.workloads.trainticket import build_trainticket

__all__ = [
    "ApiSpec",
    "CallSpec",
    "StringAttributeSpec",
    "NumericAttributeSpec",
    "Workload",
    "TraceGenerator",
    "WorkloadDriver",
    "FaultType",
    "FaultSpec",
    "FaultInjector",
    "build_onlineboutique",
    "build_trainticket",
    "build_dataset",
    "build_subservice",
    "DATASET_SPECS",
    "SUBSERVICE_SPECS",
    "QueryWorkload",
    "TraceRecord",
    "incident_window_spec",
]
