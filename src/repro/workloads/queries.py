"""The SRE query workload model behind Figs. 3 and 12.

The paper's key empirical finding (RQ2) is that *which traces get
queried cannot be predicted at sampling time*: analysts query specific
trace ids days later, many of them ordinary traces near an incident
window.  :class:`QueryWorkload` reproduces that behaviour: a fraction
of queries target known-abnormal traces, the rest are drawn (seeded,
uniformly) from the whole population — the unpredictable tail that
drives the ~27 % miss rate of '1 or 0' sampling.

Since PR 5 the model also speaks the query plane's language: the
sampled id streams compile into :class:`~repro.query.spec.QuerySpec`
batches, and :func:`incident_window_spec` expresses the paper's
Mar. 21 investigation ("all error traces for service X in the incident
window") as one declarative predicate query whose candidate universe
is the analyst's request log — exactly the after-the-fact setting the
paper models, since a pattern-based store can only *answer about* ids,
never enumerate them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.query.spec import QuerySpec


@dataclass(frozen=True)
class TraceRecord:
    """What the query model knows about each generated trace."""

    trace_id: str
    timestamp: float
    is_abnormal: bool


class QueryWorkload:
    """Generates the trace ids analysts query after the fact."""

    def __init__(
        self,
        abnormal_bias: float = 0.45,
        seed: int = 11,
    ) -> None:
        """``abnormal_bias`` is the fraction of queries that target
        abnormal traces; the remainder hit arbitrary traces."""
        if not 0.0 <= abnormal_bias <= 1.0:
            raise ValueError("abnormal_bias must be in [0, 1]")
        self.abnormal_bias = abnormal_bias
        self._rng = random.Random(seed)

    def sample_queries(
        self, records: list[TraceRecord], count: int
    ) -> list[str]:
        """Draw ``count`` queried trace ids from the population."""
        if not records:
            return []
        abnormal = [r for r in records if r.is_abnormal]
        queries: list[str] = []
        for _ in range(count):
            use_abnormal = abnormal and self._rng.random() < self.abnormal_bias
            pool = abnormal if use_abnormal else records
            queries.append(self._rng.choice(pool).trace_id)
        return queries

    def incident_window_queries(
        self,
        records: list[TraceRecord],
        window_start: float,
        window_end: float,
        count: int,
    ) -> list[str]:
        """Queries biased towards an incident window (paper's Mar. 21
        case: analysts retro-query a time range regardless of sampling)."""
        in_window = [
            r for r in records if window_start <= r.timestamp < window_end
        ]
        pool = in_window or records
        return [self._rng.choice(pool).trace_id for _ in range(count)]

    def sample_spec(
        self,
        records: list[TraceRecord],
        count: int,
        pull_params: bool = False,
    ) -> QuerySpec:
        """The Fig. 12 daily query stream as one batch spec.

        Same draw as :meth:`sample_queries` (and it advances the same
        seeded RNG), packaged for ``QueryEngine.execute``: one result
        per queried id, misses included.
        """
        return QuerySpec.batch(
            self.sample_queries(records, count), pull_params=pull_params
        )

    def storm_schedule(
        self, qps: float, count: int, seed: int = 0
    ) -> list[float]:
        """Deterministic arrival times of a sustained-QPS query storm.

        A pure function of ``(qps, count, seed)`` — its own seeded RNG,
        never the instance's, and no wall clock anywhere: arrival *i*
        lands uniformly inside its own ``1/qps`` slot, so the schedule
        sustains exactly ``qps`` arrivals per simulated second with
        seeded jitter, and is strictly increasing (one arrival per
        slot).  The storm harness replays it against the ingest clock;
        identical arguments give identical storms on every machine.
        """
        if qps <= 0:
            raise ValueError("qps must be positive")
        if count < 0:
            raise ValueError("count must be >= 0")
        rng = random.Random(f"storm:{qps}:{seed}")
        return [(i + rng.random()) / qps for i in range(count)]


def incident_window_spec(
    records: list[TraceRecord],
    window_start: float,
    window_end: float,
    service: str | None = None,
    operation: str | None = None,
    error_only: bool = False,
    limit: int | None = None,
    pull_params: bool = False,
) -> QuerySpec:
    """Compile an incident investigation into one predicate spec.

    The candidate universe is the request log's ids inside the window
    (time pushdown happens here, where the timestamps live — the store
    keeps none for unsampled traces), and the content predicates
    (service / operation / error status) are pushed down to the
    engine, which evaluates them against each reconstruction.  The
    window is also recorded on the spec so exact reconstructions are
    re-checked against real span timestamps.
    """
    in_window = [r for r in records if window_start <= r.timestamp < window_end]
    return QuerySpec.where(
        candidates=[r.trace_id for r in in_window],
        service=service,
        operation=operation,
        error_only=error_only,
        time_range=(window_start, window_end),
        limit=limit,
        pull_params=pull_params,
    )
