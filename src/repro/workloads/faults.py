"""Fault injection: the Chaosblade substitute.

The paper injects 56 faults of five types (Table 2) into the benchmark
systems.  Here faults perturb generated traces deterministically: the
target service's spans get inflated latencies, error statuses, or
exception attributes, and the perturbation is propagated up the span
tree as real latency/failures would be.  Each injected trace can carry
the ``is_abnormal`` tag used by the evaluation's tail samplers.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.model.span import Span, SpanStatus
from repro.model.trace import Trace


class FaultType(enum.Enum):
    """The five fault types from paper Table 2."""

    CPU_EXHAUSTION = "cpu_exhaustion"
    MEMORY_EXHAUSTION = "memory_exhaustion"
    NETWORK_DELAY = "network_delay"
    CODE_EXCEPTION = "code_exception"
    ERROR_RETURN = "error_return"


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: a type aimed at a service."""

    fault_type: FaultType
    target_service: str


class FaultInjector:
    """Applies a fault's signature to generated traces."""

    def __init__(self, seed: int = 0, tag_abnormal: bool = True) -> None:
        self._rng = random.Random(seed)
        self.tag_abnormal = tag_abnormal

    def inject(self, trace: Trace, fault: FaultSpec) -> Trace:
        """Return a perturbed copy of ``trace``; the original is kept.

        If the target service does not appear in the trace, the trace is
        returned unchanged (the request did not touch the faulty
        service — exactly what happens with real chaos injection).
        """
        targets = [s for s in trace.spans if s.service == fault.target_service]
        if not targets:
            return trace
        spans = {s.span_id: s for s in trace.spans}
        deltas: dict[str, float] = {}
        for span in targets:
            mutated, extra_ms = self._mutate(span, fault.fault_type)
            spans[span.span_id] = mutated
            if extra_ms > 0:
                deltas[span.span_id] = extra_ms
        # Propagate added latency to every ancestor.
        for span_id, extra in deltas.items():
            current = spans[span_id].parent_id
            while current is not None and current in spans:
                parent = spans[current]
                spans[current] = _adjust_duration(parent, extra)
                current = parent.parent_id
        if self.tag_abnormal:
            root_id = next(
                (s.span_id for s in spans.values() if s.parent_id is None), None
            )
            if root_id is not None:
                root = spans[root_id]
                spans[root_id] = root.with_attributes({"is_abnormal": "true"})
        ordered = sorted(spans.values(), key=lambda s: (s.start_time, s.span_id))
        return Trace(trace_id=trace.trace_id, spans=ordered)

    def _mutate(self, span: Span, fault_type: FaultType) -> tuple[Span, float]:
        """Apply one fault signature; returns (new span, added latency ms)."""
        if fault_type is FaultType.CPU_EXHAUSTION:
            extra = span.duration * self._rng.uniform(4.0, 9.0)
            return _adjust_duration(span, extra), extra
        if fault_type is FaultType.MEMORY_EXHAUSTION:
            extra = span.duration * self._rng.uniform(2.0, 5.0)
            mutated = _adjust_duration(span, extra).with_attributes(
                {
                    "jvm.gc.pause": (
                        "Full GC (Allocation Failure) heap usage exceeded "
                        f"threshold after {self._rng.randint(3, 9)} collections"
                    )
                }
            )
            return mutated, extra
        if fault_type is FaultType.NETWORK_DELAY:
            extra = self._rng.uniform(200.0, 800.0)
            return _adjust_duration(span, extra), extra
        if fault_type is FaultType.CODE_EXCEPTION:
            mutated = _set_status(span, SpanStatus.ERROR).with_attributes(
                {
                    "exception.message": (
                        "java.lang.NullPointerException: exception while handling "
                        f"request in worker thread {self._rng.randint(1, 64)}"
                    )
                }
            )
            return mutated, 0.0
        if fault_type is FaultType.ERROR_RETURN:
            mutated = _set_status(span, SpanStatus.ERROR).with_attributes(
                {"http.status_code": self._rng.choice([500, 502, 503])}
            )
            return mutated, 0.0
        raise ValueError(f"unknown fault type: {fault_type}")  # pragma: no cover


def _adjust_duration(span: Span, extra_ms: float) -> Span:
    return Span(
        trace_id=span.trace_id,
        span_id=span.span_id,
        parent_id=span.parent_id,
        name=span.name,
        service=span.service,
        kind=span.kind,
        start_time=span.start_time,
        duration=round(span.duration + extra_ms, 3),
        status=span.status,
        node=span.node,
        attributes=span.attributes,
    )


def _set_status(span: Span, status: SpanStatus) -> Span:
    return Span(
        trace_id=span.trace_id,
        span_id=span.span_id,
        parent_id=span.parent_id,
        name=span.name,
        service=span.service,
        kind=span.kind,
        start_time=span.start_time,
        duration=span.duration,
        status=status,
        node=span.node,
        attributes=span.attributes,
    )
