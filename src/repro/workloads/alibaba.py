"""Alibaba-style datasets and sub-services (paper Fig. 13 and Table 5).

:data:`DATASET_SPECS` mirrors Fig. 13's six datasets (API counts and
average call depths; trace counts are scaled down by a configurable
factor since the originals run to millions).  :data:`SUBSERVICE_SPECS`
mirrors Table 5's five sub-services with their expected pattern-count
magnitudes.  Both build deep chain/fan-out call trees across synthetic
service fleets, with the attribute catalog supplying realistic values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads import attr_catalog as cat
from repro.workloads.specs import ApiSpec, CallSpec, Workload


@dataclass(frozen=True)
class DatasetSpec:
    """Shape parameters of one Fig. 13 dataset."""

    name: str
    trace_number: int  # the paper's full-size count (for documentation)
    api_number: int
    average_depth: int


DATASET_SPECS: dict[str, DatasetSpec] = {
    "A": DatasetSpec("A", 142_217, 2, 6),
    "B": DatasetSpec("B", 842_103, 4, 11),
    "C": DatasetSpec("C", 1_652_214, 4, 52),
    "D": DatasetSpec("D", 256_477, 6, 15),
    "E": DatasetSpec("E", 1_143_529, 6, 28),
    "F": DatasetSpec("F", 1_874_583, 8, 23),
}


@dataclass(frozen=True)
class SubServiceSpec:
    """Shape parameters of one Table 5 sub-service."""

    name: str
    raw_trace_number: int
    api_number: int  # drives the span/trace pattern counts


SUBSERVICE_SPECS: dict[str, SubServiceSpec] = {
    "S1": SubServiceSpec("S1", 146_985, 4),
    "S2": SubServiceSpec("S2", 126_245, 4),
    "S3": SubServiceSpec("S3", 93_546, 3),
    "S4": SubServiceSpec("S4", 92_527, 2),
    "S5": SubServiceSpec("S5", 79_179, 2),
}


def _tier_attributes(dataset: str, api_index: int, tier: int) -> dict:
    """Attribute set for one tier of a call chain.

    Rotating between DB, cache, MQ and RPC spans gives each dataset a
    few distinct span shapes per API, like real middleware stacks.
    """
    flavor = (api_index + tier) % 4
    base = {
        "thread.name": cat.thread_name(f"{7000 + tier}"),
        "app.context": cat.request_context(f"ds{dataset.lower()}-tier{tier}"),
    }
    entity = f"ds{dataset.lower()}_api{api_index}_tier{tier}"
    if flavor == 0:
        base["db.statement"] = cat.sql_select(
            f"{entity}_records", ["record_id", "shard_key", "payload", "version"], "record_id"
        )
        base["db.rows"] = cat.db_rows(4.0)
    elif flavor == 1:
        base["cache.key"] = cat.cache_key(f"ds{dataset.lower()}", entity)
        base["payload.bytes"] = cat.payload_bytes(512.0)
    elif flavor == 2:
        base["mq.topic"] = cat.mq_topic(entity)
        base["payload.bytes"] = cat.payload_bytes(1024.0)
    else:
        base["rpc.method"] = cat.grpc_method(
            "alibaba.inner", f"Tier{tier}Service", f"Handle{api_index}"
        )
        base["db.statement"] = cat.sql_insert(f"{entity}_audit", ["audit_id", "actor_id"])
    return base


def _chain(dataset: str, api_index: int, depth: int, services_per_node: int = 4) -> CallSpec:
    """A call chain of ``depth`` tiers with occasional 2-way fan-out."""
    def build(tier: int) -> CallSpec:
        service = f"ds{dataset.lower()}-svc-{api_index}-{tier}"
        children: list[CallSpec] = []
        if tier + 1 < depth:
            children.append(build(tier + 1))
            # Light fan-out every 5 tiers keeps the tree realistic
            # without exploding span counts at depth 52.
            if tier % 5 == 2 and tier + 1 < depth - 1:
                children.append(
                    CallSpec(
                        service=f"ds{dataset.lower()}-side-{api_index}-{tier}",
                        operation=f"sidecar.audit.tier{tier}",
                        attributes=_tier_attributes(dataset, api_index, tier + 100),
                        own_duration_ms=1.5,
                    )
                )
        return CallSpec(
            service=service,
            operation=f"ds{dataset}.api{api_index}.tier{tier}",
            attributes=_tier_attributes(dataset, api_index, tier),
            children=children,
            own_duration_ms=2.0 + (tier % 3),
        )

    return build(0)


def build_dataset(name: str, nodes: int = 8) -> Workload:
    """Build the Fig. 13 dataset ``name`` ('A'..'F') as a workload."""
    spec = DATASET_SPECS.get(name.upper())
    if spec is None:
        raise KeyError(f"unknown dataset {name!r}; expected one of A-F")
    apis = []
    for api_index in range(spec.api_number):
        # Depth varies a little around the average so traces differ.
        depth = max(2, spec.average_depth + (api_index % 3) - 1)
        apis.append(
            ApiSpec(
                name=f"api_{api_index}",
                weight=1.0 / (api_index + 1),  # Zipf-ish API popularity
                root=_chain(spec.name, api_index, depth),
            )
        )
    services = {s for api in apis for s in api.services()}
    placement = {
        svc: f"ali-node-{i % nodes}" for i, svc in enumerate(sorted(services))
    }
    return Workload(name=f"Dataset-{spec.name}", apis=apis, service_nodes=placement)


def build_subservice(name: str, nodes: int = 3) -> Workload:
    """Build the Table 5 sub-service ``name`` ('S1'..'S5') as a workload."""
    spec = SUBSERVICE_SPECS.get(name.upper())
    if spec is None:
        raise KeyError(f"unknown sub-service {name!r}; expected S1-S5")
    apis = []
    for api_index in range(spec.api_number):
        depth = 3 + api_index % 2
        apis.append(
            ApiSpec(
                name=f"{spec.name.lower()}_api_{api_index}",
                weight=1.0 / (api_index + 1),
                root=_chain(spec.name, api_index, depth),
            )
        )
    services = {s for api in apis for s in api.services()}
    placement = {
        svc: f"sub-node-{i % nodes}" for i, svc in enumerate(sorted(services))
    }
    return Workload(name=f"SubService-{spec.name}", apis=apis, service_nodes=placement)
