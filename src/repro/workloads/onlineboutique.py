"""OnlineBoutique: Google's 10-microservice e-commerce demo.

The service set and call structure follow the upstream demo
(frontend, productcatalog, currency, cart, recommendation, shipping,
checkout, payment, email, ad); the five APIs below are the demo's user
journeys the paper's evaluation drives with load generators.
"""

from __future__ import annotations

from repro.workloads import attr_catalog as cat
from repro.workloads.specs import ApiSpec, CallSpec, Workload

SERVICES = [
    "frontend",
    "productcatalogservice",
    "currencyservice",
    "cartservice",
    "recommendationservice",
    "shippingservice",
    "checkoutservice",
    "paymentservice",
    "emailservice",
    "adservice",
]


def _placement() -> dict[str, str]:
    # Two services per node across five nodes, mirroring a small
    # Kubernetes deployment.
    return {svc: f"ob-node-{i // 2}" for i, svc in enumerate(SERVICES)}


def _catalog_get() -> CallSpec:
    return CallSpec(
        service="productcatalogservice",
        operation="hipstershop.ProductCatalogService/GetProduct",
        attributes={
            "app.context": cat.request_context("productcatalogservice"),
            "rpc.method": cat.grpc_method("hipstershop", "ProductCatalogService", "GetProduct"),
            "db.statement": cat.sql_select(
                "products", ["product_id", "name", "description", "price_usd"], "product_id"
            ),
            "db.rows": cat.db_rows(1.5),
            "thread.name": cat.thread_name("3550"),
        },
        own_duration_ms=4.0,
    )


def _currency_convert() -> CallSpec:
    return CallSpec(
        service="currencyservice",
        operation="hipstershop.CurrencyService/Convert",
        attributes={
            "rpc.method": cat.grpc_method("hipstershop", "CurrencyService", "Convert"),
            "app.money": cat.currency_amount(),
            "thread.name": cat.thread_name("7000"),
        },
        own_duration_ms=2.0,
    )


def _cart_get() -> CallSpec:
    return CallSpec(
        service="cartservice",
        operation="hipstershop.CartService/GetCart",
        attributes={
            "rpc.method": cat.grpc_method("hipstershop", "CartService", "GetCart"),
            "cache.key": cat.cache_key("boutique", "cart"),
            "payload.bytes": cat.payload_bytes(512.0),
        },
        own_duration_ms=3.0,
    )


def _recommend() -> CallSpec:
    return CallSpec(
        service="recommendationservice",
        operation="hipstershop.RecommendationService/ListRecommendations",
        attributes={
            "rpc.method": cat.grpc_method(
                "hipstershop", "RecommendationService", "ListRecommendations"
            ),
            "payload.bytes": cat.payload_bytes(1024.0),
        },
        children=[_catalog_get()],
        own_duration_ms=6.0,
    )


def _ad() -> CallSpec:
    return CallSpec(
        service="adservice",
        operation="hipstershop.AdService/GetAds",
        attributes={
            "rpc.method": cat.grpc_method("hipstershop", "AdService", "GetAds"),
            "payload.bytes": cat.payload_bytes(256.0),
        },
        own_duration_ms=2.5,
    )


def _shipping_quote() -> CallSpec:
    return CallSpec(
        service="shippingservice",
        operation="hipstershop.ShippingService/GetQuote",
        attributes={
            "rpc.method": cat.grpc_method("hipstershop", "ShippingService", "GetQuote"),
            "app.money": cat.currency_amount(),
        },
        own_duration_ms=3.0,
    )


def build_onlineboutique() -> Workload:
    """The OnlineBoutique workload with its five user journeys."""
    placement = _placement()

    home = ApiSpec(
        name="home",
        weight=0.35,
        root=CallSpec(
            service="frontend",
            operation="GET /",
            attributes={
                "http.url": cat.http_url("boutique", "storefront", "home"),
                "http.user_agent": cat.user_agent(),
                "app.context": cat.request_context("frontend"),
                "payload.bytes": cat.payload_bytes(8192.0),
            },
            children=[_catalog_get(), _currency_convert(), _cart_get(), _ad()],
            own_duration_ms=8.0,
        ),
    )

    product = ApiSpec(
        name="browse_product",
        weight=0.30,
        root=CallSpec(
            service="frontend",
            operation="GET /product",
            attributes={
                "http.url": cat.http_url("boutique", "catalog", "product"),
                "http.user_agent": cat.user_agent(),
            },
            children=[
                _catalog_get(),
                _currency_convert(),
                _recommend(),
                _ad(),
            ],
            own_duration_ms=7.0,
        ),
    )

    add_to_cart = ApiSpec(
        name="add_to_cart",
        weight=0.18,
        root=CallSpec(
            service="frontend",
            operation="POST /cart",
            attributes={
                "http.url": cat.http_url("boutique", "cart", "items"),
                "http.user_agent": cat.user_agent(),
            },
            children=[
                _catalog_get(),
                CallSpec(
                    service="cartservice",
                    operation="hipstershop.CartService/AddItem",
                    attributes={
                        "rpc.method": cat.grpc_method("hipstershop", "CartService", "AddItem"),
                        "db.statement": cat.sql_insert(
                            "cart_items", ["cart_id", "product_id"]
                        ),
                        "db.rows": cat.db_rows(1.0),
                    },
                    own_duration_ms=4.0,
                ),
            ],
            own_duration_ms=6.0,
        ),
    )

    checkout = ApiSpec(
        name="checkout",
        weight=0.12,
        root=CallSpec(
            service="frontend",
            operation="POST /checkout",
            attributes={
                "http.url": cat.http_url("boutique", "checkout", "orders"),
                "http.user_agent": cat.user_agent(),
            },
            children=[
                CallSpec(
                    service="checkoutservice",
                    operation="hipstershop.CheckoutService/PlaceOrder",
                    attributes={
                        "rpc.method": cat.grpc_method(
                            "hipstershop", "CheckoutService", "PlaceOrder"
                        ),
                        "db.statement": cat.sql_insert(
                            "orders", ["order_id", "user_id"]
                        ),
                        "retry.count": cat.retry_count(),
                    },
                    children=[
                        _cart_get(),
                        _catalog_get(),
                        _currency_convert(),
                        _shipping_quote(),
                        CallSpec(
                            service="paymentservice",
                            operation="hipstershop.PaymentService/Charge",
                            attributes={
                                "rpc.method": cat.grpc_method(
                                    "hipstershop", "PaymentService", "Charge"
                                ),
                                "app.money": cat.currency_amount(),
                            },
                            own_duration_ms=12.0,
                        ),
                        CallSpec(
                            service="emailservice",
                            operation="hipstershop.EmailService/SendOrderConfirmation",
                            attributes={
                                "rpc.method": cat.grpc_method(
                                    "hipstershop", "EmailService", "SendOrderConfirmation"
                                ),
                                "mq.topic": cat.mq_topic("boutique"),
                            },
                            own_duration_ms=9.0,
                        ),
                    ],
                    own_duration_ms=10.0,
                )
            ],
            own_duration_ms=8.0,
        ),
    )

    currency_api = ApiSpec(
        name="set_currency",
        weight=0.05,
        root=CallSpec(
            service="frontend",
            operation="POST /setCurrency",
            attributes={
                "http.url": cat.http_url("boutique", "session", "currency"),
                "http.user_agent": cat.user_agent(),
            },
            children=[_currency_convert()],
            own_duration_ms=3.0,
        ),
    )

    return Workload(
        name="OnlineBoutique",
        apis=[home, product, add_to_cart, checkout, currency_api],
        service_nodes=placement,
    )
