"""A catalog of realistic attribute specs shared by all workloads.

Every spec keeps variable word-tokens well under the 20 % budget that
the paper's 0.8 LCS clustering threshold implies, mirroring production
attribute values (SQL statements, URLs, thread names) whose text is
dominated by fixed skeleton.
"""

from __future__ import annotations

from repro.workloads.specs import (
    NumericAttributeSpec,
    StringAttributeSpec,
    choice_slot,
    float_slot,
    hex_slot,
    int_slot,
)


def sql_select(table: str, columns: list[str], key: str) -> StringAttributeSpec:
    """A parameterised point-select, verbose like real ORM output."""
    cols = ", ".join(f"{table}.{c} AS {table}_{c}" for c in columns)
    return StringAttributeSpec(
        template=(
            f"SELECT {cols}, {table}.created_at AS {table}_created_at, "
            f"{table}.updated_at AS {table}_updated_at, {table}.version AS "
            f"{table}_version FROM {table} USE INDEX (idx_{table}_{key}) "
            f"WHERE {table}.{key} = '{{}}' AND {table}.deleted = 0 AND "
            f"{table}.tenant_region IN ('cn-hangzhou', 'cn-shanghai') "
            "ORDER BY updated_at DESC, id DESC LIMIT 1 /* trace-injected "
            "comment: connection pool druid, statement cached, timeout 3000ms */"
        ),
        slots=[hex_slot(6)],
    )


def sql_insert(table: str, columns: list[str]) -> StringAttributeSpec:
    """A parameterised insert statement with two variable values."""
    cols = ", ".join(columns)
    return StringAttributeSpec(
        template=(
            f"INSERT INTO {table} ({cols}, shard_key, tenant_id, created_at, "
            "updated_at, created_by, updated_by, is_deleted, version) VALUES "
            "('{}', '{}', DEFAULT, DEFAULT, now(), now(), 'system', 'system', "
            "0, 1) ON DUPLICATE KEY UPDATE updated_at = now(), version = "
            "version + 1 /* idempotent upsert, retry-safe, binlog row format */"
        ),
        slots=[hex_slot(6), int_slot(1, 9999)],
    )


def sql_update(table: str, column: str, key: str) -> StringAttributeSpec:
    """A parameterised update statement."""
    return StringAttributeSpec(
        template=(
            f"UPDATE {table} FORCE INDEX (uk_{table}_{key}) SET {column} = "
            "'{}', updated_at = now(), updated_by = 'system', version = "
            f"version + 1 WHERE {key} = '{{}}' AND is_deleted = 0 AND "
            "version >= 0 /* optimistic lock disabled, audit trail enabled */"
        ),
        slots=[int_slot(1, 500), hex_slot(8)],
    )


def http_url(*segments: str) -> StringAttributeSpec:
    """A REST path with one trailing resource id."""
    path = "/".join(segments)
    return StringAttributeSpec(
        template=f"/api/v1/{path}/{{}}/details",
        slots=[hex_slot(6)],
    )


def grpc_method(package: str, service: str, method: str) -> StringAttributeSpec:
    """A fully-qualified gRPC method — constant per operation."""
    return StringAttributeSpec(template=f"/{package}.{service}/{method}", slots=[])


def thread_name(pool: str) -> StringAttributeSpec:
    """Executor thread names, e.g. ``http-nio-8080-exec-17``."""
    return StringAttributeSpec(
        template=f"http-nio-{pool}-exec-pool-worker-{{}}",
        slots=[int_slot(1, 64)],
    )


def cache_key(namespace: str, entity: str) -> StringAttributeSpec:
    """A structured cache key with one variable id."""
    return StringAttributeSpec(
        template=f"cache:{namespace}:{entity}:profile:region:primary:{{}}",
        slots=[hex_slot(6)],
    )


def mq_topic(domain: str) -> StringAttributeSpec:
    """Message-queue routing key with one variable partition."""
    return StringAttributeSpec(
        template=f"events.{domain}.order.lifecycle.notify.partition.{{}}",
        slots=[int_slot(0, 15)],
    )


def user_agent() -> StringAttributeSpec:
    """Browser user agents from a small fixed vocabulary."""
    return StringAttributeSpec(
        template="Mozilla/5.0 (platform) AppleWebKit/537.36 Chrome/{} Safari/537.36",
        slots=[choice_slot(["120.0.0.0", "121.0.0.0", "122.0.0.0", "123.0.0.0"])],
    )


def currency_amount() -> StringAttributeSpec:
    """Money amounts rendered as structured text."""
    return StringAttributeSpec(
        template="currency=USD units=whole amount={} cents rounded=half-even",
        slots=[float_slot(1.0, 500.0)],
    )


def request_context(component: str) -> StringAttributeSpec:
    """A verbose middleware context dump with two variable ids.

    Real production spans routinely attach context blobs like this —
    they are the bulk of per-span bytes and are almost entirely fixed
    text, which is exactly the redundancy Mint's span parsing exploits.
    """
    return StringAttributeSpec(
        template=(
            f"component={component} runtime=jvm-17.0.9 gc=G1 heap-region=16m "
            "rpc-framework=dubbo-3.2 serialization=hessian2 compression=none "
            "loadbalance=least-active cluster=failover retries=2 timeout=3000 "
            "connections=shared provider-zone=az-1 consumer-zone=az-2 "
            "router-tags=stable,prod circuit-breaker=closed rate-limiter=token-bucket "
            "qps-quota=5000 degrade-strategy=fallback-cache request-id={} "
            "upstream-session={} sampled-baggage=none span-limit=128 "
            "attr-limit=64kb event-limit=32 link-limit=8"
        ),
        slots=[hex_slot(8), int_slot(1, 9999)],
    )


def consumer_group(domain: str) -> StringAttributeSpec:
    """Kafka-style consumer metadata with one variable member id."""
    return StringAttributeSpec(
        template=(
            f"group={domain}-order-lifecycle-consumer protocol=range "
            "session-timeout=10000 heartbeat-interval=3000 max-poll-records=500 "
            "auto-offset-reset=latest enable-auto-commit=false isolation-level="
            "read_committed member-id={} assignment-strategy=cooperative-sticky"
        ),
        slots=[hex_slot(6)],
    )


def payload_bytes(median: float = 2048.0) -> NumericAttributeSpec:
    """Response payload size in bytes (whole bytes)."""
    return NumericAttributeSpec(median=median, spread=0.6, minimum=64.0, integer=True)


def db_rows(median: float = 8.0) -> NumericAttributeSpec:
    """Rows touched by a query (whole rows)."""
    return NumericAttributeSpec(median=median, spread=0.8, minimum=0.0, integer=True)


def retry_count() -> NumericAttributeSpec:
    """Client retry counter, almost always 0 or 1."""
    return NumericAttributeSpec(median=0.4, spread=0.9, minimum=0.0, integer=True)
