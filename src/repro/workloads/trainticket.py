"""TrainTicket: the 45-service railway ticketing benchmark.

The service list follows FudanSELab's train-ticket; the eight APIs
below model its main user journeys (query trips, book tickets, pay,
consign, cancel, admin queries) as REST call chains that fan out across
the fleet, matching the deeper topologies the paper reports for TT.
"""

from __future__ import annotations

from repro.workloads import attr_catalog as cat
from repro.workloads.specs import ApiSpec, CallSpec, Workload

SERVICES = [
    "ts-ui-dashboard",
    "ts-auth-service",
    "ts-user-service",
    "ts-verification-code-service",
    "ts-station-service",
    "ts-train-service",
    "ts-config-service",
    "ts-security-service",
    "ts-contacts-service",
    "ts-order-service",
    "ts-order-other-service",
    "ts-preserve-service",
    "ts-preserve-other-service",
    "ts-basic-service",
    "ts-ticketinfo-service",
    "ts-price-service",
    "ts-notification-service",
    "ts-inside-payment-service",
    "ts-payment-service",
    "ts-execute-service",
    "ts-seat-service",
    "ts-travel-service",
    "ts-travel2-service",
    "ts-route-service",
    "ts-route-plan-service",
    "ts-travel-plan-service",
    "ts-rebook-service",
    "ts-cancel-service",
    "ts-assurance-service",
    "ts-food-service",
    "ts-food-map-service",
    "ts-consign-service",
    "ts-consign-price-service",
    "ts-admin-basic-info-service",
    "ts-admin-order-service",
    "ts-admin-route-service",
    "ts-admin-travel-service",
    "ts-admin-user-service",
    "ts-avatar-service",
    "ts-news-service",
    "ts-ticket-office-service",
    "ts-voucher-service",
    "ts-gateway-service",
    "ts-delivery-service",
    "ts-wait-order-service",
]

assert len(SERVICES) == 45


def _placement() -> dict[str, str]:
    # ~4 services per node across 12 VMs, as in the paper's deployment.
    return {svc: f"tt-node-{i % 12}" for i, svc in enumerate(SERVICES)}


def _rest(service: str, op: str, *, sql_table: str | None = None,
          children: list[CallSpec] | None = None, ms: float = 4.0) -> CallSpec:
    """A REST handler span with a standard attribute set."""
    attributes = {
        "http.url": cat.http_url(
            "trainticket", service.removeprefix("ts-").removesuffix("-service"), op
        ),
        "thread.name": cat.thread_name("8080"),
        "app.context": cat.request_context(service),
    }
    if sql_table is not None:
        attributes["db.statement"] = cat.sql_select(
            sql_table, ["id", "status", "payload", "version"], "id"
        )
        attributes["db.rows"] = cat.db_rows(3.0)
    return CallSpec(
        service=service,
        operation=f"{op}",
        attributes=attributes,
        children=children or [],
        own_duration_ms=ms,
    )


def _auth_chain() -> CallSpec:
    return _rest(
        "ts-auth-service",
        "POST /auth/login",
        sql_table="auth_users",
        children=[
            _rest("ts-user-service", "GET /users/byId", sql_table="users"),
            _rest("ts-verification-code-service", "POST /verify/code", ms=2.0),
        ],
    )


def _basic_info() -> CallSpec:
    return _rest(
        "ts-basic-service",
        "POST /basic/travel",
        children=[
            _rest("ts-station-service", "GET /stations/idList", sql_table="stations"),
            _rest("ts-train-service", "GET /trains/byName", sql_table="trains"),
            _rest("ts-route-service", "GET /routes/byId", sql_table="routes"),
            _rest("ts-price-service", "GET /prices/byRouteAndTrain", sql_table="prices"),
        ],
        ms=5.0,
    )


def _seat() -> CallSpec:
    return _rest(
        "ts-seat-service",
        "POST /seats/left",
        children=[
            _rest("ts-order-service", "GET /orders/leftTickets", sql_table="orders"),
            _rest("ts-config-service", "GET /configs/byName", sql_table="configs"),
        ],
    )


def _travel_query(travel: str) -> CallSpec:
    return _rest(
        travel,
        "POST /travel/query",
        sql_table="trips",
        children=[_basic_info(), _seat(), _rest("ts-ticketinfo-service", "POST /ticketinfo/query")],
        ms=7.0,
    )


def build_trainticket() -> Workload:
    """The TrainTicket workload with eight user journeys."""
    placement = _placement()

    query_trips = ApiSpec(
        name="query_trips",
        weight=0.30,
        root=_rest(
            "ts-ui-dashboard",
            "POST /trips/left",
            children=[
                _rest("ts-gateway-service", "POST /gateway/route",
                      children=[_travel_query("ts-travel-service")]),
            ],
            ms=6.0,
        ),
    )

    query_advanced = ApiSpec(
        name="query_travel_plan",
        weight=0.12,
        root=_rest(
            "ts-ui-dashboard",
            "POST /travelPlan/cheapest",
            children=[
                _rest(
                    "ts-travel-plan-service",
                    "POST /travelPlan/search",
                    children=[
                        _rest("ts-route-plan-service", "POST /routePlan/cheapest",
                              children=[_travel_query("ts-travel-service"),
                                        _travel_query("ts-travel2-service")]),
                    ],
                    ms=6.0,
                )
            ],
        ),
    )

    book = ApiSpec(
        name="book_ticket",
        weight=0.22,
        root=_rest(
            "ts-ui-dashboard",
            "POST /preserve",
            children=[
                _auth_chain(),
                _rest(
                    "ts-preserve-service",
                    "POST /preserve/order",
                    children=[
                        _rest(
                            "ts-contacts-service",
                            "GET /contacts/byAccount",
                            sql_table="contacts",
                        ),
                        _rest(
                            "ts-security-service",
                            "GET /security/check",
                            sql_table="security_rules",
                        ),
                        _travel_query("ts-travel-service"),
                        _rest(
                            "ts-assurance-service",
                            "POST /assurance/create",
                            sql_table="assurances",
                        ),
                        _rest(
                            "ts-food-service",
                            "POST /food/order",
                            sql_table="food_orders",
                            children=[
                                _rest(
                                    "ts-food-map-service",
                                    "GET /foodmap/byTrip",
                                    sql_table="food_map",
                                )
                            ],
                        ),
                        _rest(
                            "ts-order-service",
                            "POST /orders/create",
                            sql_table="orders",
                            children=[
                                _rest(
                                    "ts-notification-service",
                                    "POST /notify/preserve",
                                    ms=3.0,
                                )
                            ],
                        ),
                    ],
                    ms=9.0,
                ),
            ],
            ms=7.0,
        ),
    )

    pay = ApiSpec(
        name="pay_order",
        weight=0.14,
        root=_rest(
            "ts-ui-dashboard",
            "POST /payment/pay",
            children=[
                _rest(
                    "ts-inside-payment-service",
                    "POST /insidePayment/pay",
                    sql_table="inside_payments",
                    children=[
                        _rest("ts-order-service", "GET /orders/byId", sql_table="orders"),
                        _rest("ts-payment-service", "POST /payment/charge", sql_table="payments"),
                    ],
                    ms=8.0,
                )
            ],
        ),
    )

    cancel = ApiSpec(
        name="cancel_order",
        weight=0.08,
        root=_rest(
            "ts-ui-dashboard",
            "POST /cancel/refund",
            children=[
                _rest(
                    "ts-cancel-service",
                    "POST /cancel/order",
                    children=[
                        _rest("ts-order-service", "PUT /orders/status", sql_table="orders"),
                        _rest("ts-inside-payment-service", "POST /insidePayment/drawback",
                              sql_table="inside_payments"),
                        _rest("ts-notification-service", "POST /notify/cancel", ms=3.0),
                    ],
                    ms=6.0,
                )
            ],
        ),
    )

    consign = ApiSpec(
        name="consign_luggage",
        weight=0.06,
        root=_rest(
            "ts-ui-dashboard",
            "POST /consign/insert",
            children=[
                _rest(
                    "ts-consign-service",
                    "POST /consign/create",
                    sql_table="consign_records",
                    children=[
                        _rest("ts-consign-price-service", "GET /consignPrice/byWeight",
                              sql_table="consign_prices"),
                        _rest(
                            "ts-delivery-service",
                            "POST /delivery/schedule",
                            sql_table="deliveries",
                        ),
                    ],
                ),
            ],
        ),
    )

    admin_orders = ApiSpec(
        name="admin_query_orders",
        weight=0.05,
        root=_rest(
            "ts-ui-dashboard",
            "GET /admin/orders",
            children=[
                _rest(
                    "ts-admin-order-service",
                    "GET /adminorder/all",
                    children=[
                        _rest("ts-order-service", "GET /orders/all", sql_table="orders"),
                        _rest(
                            "ts-order-other-service",
                            "GET /orderOther/all",
                            sql_table="orders_other",
                        ),
                    ],
                )
            ],
        ),
    )

    browse_news = ApiSpec(
        name="browse_news",
        weight=0.03,
        root=_rest(
            "ts-ui-dashboard",
            "GET /news",
            children=[
                _rest("ts-news-service", "GET /news/list", sql_table="news"),
                _rest("ts-avatar-service", "GET /avatar/byUser", sql_table="avatars"),
                _rest("ts-ticket-office-service", "GET /office/list", sql_table="offices"),
                _rest("ts-voucher-service", "GET /voucher/byOrder", sql_table="vouchers"),
            ],
        ),
    )

    # A rare admin path exercising otherwise-idle services, giving the
    # edge-case sampler something to find.
    admin_sweep = ApiSpec(
        name="admin_sweep",
        weight=0.004,
        root=_rest(
            "ts-ui-dashboard",
            "GET /admin/sweep",
            children=[
                _rest("ts-admin-basic-info-service", "GET /adminbasic/all", sql_table="basic_info"),
                _rest("ts-admin-route-service", "GET /adminroute/all", sql_table="routes"),
                _rest("ts-admin-travel-service", "GET /admintravel/all", sql_table="trips"),
                _rest("ts-admin-user-service", "GET /adminuser/all", sql_table="users"),
                _rest("ts-execute-service", "POST /execute/collected", sql_table="executions"),
                _rest("ts-rebook-service", "GET /rebook/pending", sql_table="rebooks"),
                _rest("ts-wait-order-service", "GET /waitorder/all", sql_table="wait_orders"),
            ],
        ),
    )

    return Workload(
        name="TrainTicket",
        apis=[
            query_trips,
            query_advanced,
            book,
            pay,
            cancel,
            consign,
            admin_orders,
            browse_news,
            admin_sweep,
        ],
        service_nodes=placement,
    )
