"""Declarative workload specifications.

A :class:`Workload` is a set of weighted :class:`ApiSpec` request types
over a service topology.  Each API is a tree of :class:`CallSpec` nodes
— one per span — with attribute specs that generate values exhibiting
the paper's commonality/variability structure: a fixed template
skeleton plus a few variable slots.

Template design rule: keep variable word-tokens at most ~1/6 of the
skeleton so LCS similarity between two instances clears the paper's
default 0.8 clustering threshold, mirroring real SQL/URL/identifier
values which are mostly constant text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

ValueGenerator = Callable[[random.Random], str]


@dataclass
class StringAttributeSpec:
    """Generates string values from a fixed template with ``{}`` slots."""

    template: str
    slots: Sequence[ValueGenerator] = ()

    def generate(self, rng: random.Random) -> str:
        """One concrete value."""
        fills = [slot(rng) for slot in self.slots]
        return self.template.format(*fills)

    @property
    def slot_count(self) -> int:
        """Number of variable positions."""
        return len(self.slots)


@dataclass
class NumericAttributeSpec:
    """Generates numeric values from a log-normal-ish distribution."""

    median: float
    spread: float = 0.4
    minimum: float = 0.0
    integer: bool = False

    def generate(self, rng: random.Random) -> float:
        """One concrete value, never below ``minimum``."""
        import math

        value = self.median * math.exp(rng.gauss(0.0, self.spread))
        value = max(self.minimum, value)
        if self.integer:
            return float(int(round(value)))
        return round(value, 3)


AttributeSpec = StringAttributeSpec | NumericAttributeSpec


@dataclass
class CallSpec:
    """One span-producing operation in an API's call tree."""

    service: str
    operation: str
    attributes: dict[str, AttributeSpec] = field(default_factory=dict)
    children: list["CallSpec"] = field(default_factory=list)
    own_duration_ms: float = 5.0
    duration_spread: float = 0.3

    def walk(self):
        """Yield this spec and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Height of the call tree rooted here."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


@dataclass
class ApiSpec:
    """One request type: a named, weighted call tree."""

    name: str
    root: CallSpec
    weight: float = 1.0

    def services(self) -> set[str]:
        """All services this API touches."""
        return {spec.service for spec in self.root.walk()}

    def span_count(self) -> int:
        """Server spans per request (client spans are added on top for
        cross-node calls by the generator)."""
        return sum(1 for _ in self.root.walk())


@dataclass
class Workload:
    """A benchmark system: APIs plus the service-to-node placement."""

    name: str
    apis: list[ApiSpec]
    service_nodes: dict[str, str]

    def __post_init__(self) -> None:
        if not self.apis:
            raise ValueError("a workload needs at least one API")
        missing = {
            spec.service
            for api in self.apis
            for spec in api.root.walk()
            if spec.service not in self.service_nodes
        }
        if missing:
            raise ValueError(f"services without node placement: {sorted(missing)}")

    @property
    def services(self) -> set[str]:
        """All placed services."""
        return set(self.service_nodes)

    @property
    def nodes(self) -> set[str]:
        """All nodes hosting at least one service."""
        return set(self.service_nodes.values())

    def api_by_name(self, name: str) -> ApiSpec:
        """Look up an API spec; raises KeyError when absent."""
        for api in self.apis:
            if api.name == name:
                return api
        raise KeyError(name)


# ----------------------------------------------------------------------
# Reusable slot generators
# ----------------------------------------------------------------------
def int_slot(low: int, high: int) -> ValueGenerator:
    """Uniform integer slot, rendered as decimal text."""
    return lambda rng: str(rng.randint(low, high))


def hex_slot(digits: int = 8) -> ValueGenerator:
    """Random fixed-width lowercase hex slot (ids, tokens)."""
    return lambda rng: f"{rng.getrandbits(digits * 4):0{digits}x}"


def choice_slot(options: Sequence[str]) -> ValueGenerator:
    """Categorical slot drawn from a small fixed vocabulary."""
    opts = list(options)
    return lambda rng: rng.choice(opts)


def float_slot(low: float, high: float, ndigits: int = 2) -> ValueGenerator:
    """Uniform float slot rendered with fixed precision."""
    return lambda rng: f"{rng.uniform(low, high):.{ndigits}f}"
