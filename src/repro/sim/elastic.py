"""Elastic-deployment harnesses: resharding, failover, autoscaling.

Three experiment modes over the same deterministic streams the other
harnesses use:

* :func:`run_reshard_experiment` — drive a stream through an elastic
  deployment, rescale it live (one host migrated per ingested trace
  once the trigger point passes), and compare the end state bit for
  bit against a fresh deployment born at the destination shard count;
* :func:`run_failover_experiment` — drive the stream under a
  :class:`~repro.elastic.chaos.ShardChaosProfile`, probe queries in
  the middle of the outage (they must degrade, never raise), and check
  the run reconverges to the no-chaos answers after replay;
* :func:`run_elastic_load_test` — a Fig. 14 load shape with shard
  chaos and the queue-depth autoscaler attached, reporting the scale
  events the pressure actually triggered.

Every function returns violations instead of asserting, so the bench
gate (``run_elastic_bench.py --check``) and the unit tests share one
implementation of the checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.elastic.autoscale import AutoscalePolicy, Autoscaler
from repro.elastic.chaos import SHARD_CHAOS_PROFILES, ShardChaosProfile, fit_outages
from repro.elastic.reshard import ReshardCoordinator, placement_violations
from repro.framework import MintFramework
from repro.query.result import QueryStatus
from repro.sim.experiment import generate_stream
from repro.sim.loadtest import LoadTestSpec, _load_test_traces, restrict_apis
from repro.transport import Deployment
from repro.workloads.specs import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.trace import Trace
    from repro.net.transport import NetworkDescriptor

# exact > partial > miss: a degraded answer may only move rightward.
_STATUS_RANK = {
    QueryStatus.EXACT: 2,
    QueryStatus.PARTIAL: 1,
    QueryStatus.MISS: 0,
}


def elastic_byte_tables(framework: MintFramework) -> dict[str, int]:
    """The invariance byte tables (merged/deduplicated figures)."""
    storage = framework.backend.storage
    return {
        "network_bytes": framework.network_bytes,
        "storage_bytes": framework.storage_bytes,
        "pattern_bytes": storage.pattern_bytes,
        "bloom_bytes": storage.bloom_bytes,
        "params_bytes": storage.params_bytes,
    }


def elastic_query_signature(
    framework: MintFramework, stream: list[tuple[float, "Trace"]]
) -> list[tuple[str, str]]:
    """(trace id, status detail) per trace — the equivalence oracle.

    Exact hits fold in the reconstructed span count and partial hits
    the segment shape, so "same statuses" cannot hide a reconstruction
    that silently changed.
    """
    signature: list[tuple[str, str]] = []
    for result in framework.query_many(trace.trace_id for _, trace in stream):
        detail = str(result.status)
        if result.status is QueryStatus.EXACT and result.trace is not None:
            detail += f":{len(result.trace.spans)}"
        elif result.status is QueryStatus.PARTIAL and result.approximate is not None:
            detail += ":" + ",".join(
                f"{seg.topo_pattern_id}/{seg.span_count}"
                for seg in result.approximate.segments
            )
        signature.append((result.trace_id, detail))
    return signature


def _drive(
    framework: MintFramework, stream: list[tuple[float, "Trace"]]
) -> None:
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)


# ----------------------------------------------------------------------
# Resharding
# ----------------------------------------------------------------------
@dataclass
class ReshardExperimentResult:
    """One live reshard checked against a fresh destination deployment."""

    workload: str
    from_shards: int
    to_shards: int
    trace_count: int
    identical: bool
    violations: list[str] = field(default_factory=list)
    migration: dict = field(default_factory=dict)
    migration_bytes: int = 0
    byte_tables: dict[str, int] = field(default_factory=dict)


def run_reshard_experiment(
    workload: Workload,
    from_shards: int = 2,
    to_shards: int = 4,
    num_traces: int = 300,
    abnormal_rate: float = 0.02,
    requests_per_minute: float = 6000.0,
    seed: int = 17,
    auto_warmup_traces: int = 50,
    trigger_frac: float = 0.5,
    network: "NetworkDescriptor | None" = None,
) -> ReshardExperimentResult:
    """Rescale a live deployment mid-stream and check bit-identity.

    The elastic run starts at ``from_shards``; once ``trigger_frac`` of
    the stream has been ingested a :class:`ReshardCoordinator` starts
    and migrates one host per subsequent trace (any remainder completes
    before ``finalize``), so migration interleaves with ingest — routing
    never stops.  The reference is a fresh ``Deployment.sharded(to_n)``
    (or elastic-at-``to_n`` over a network wire, which is bit-identical
    by the sharded gates) driven through the identical stream.

    Checks: byte tables, full query signatures, stored-trace sets and
    host placement all equal the reference's, and migration traffic is
    confined to the ``migration`` meter (the reference's reads zero).
    """
    stream, _ = generate_stream(
        workload, num_traces, abnormal_rate, requests_per_minute, seed
    )
    reference = MintFramework(
        deployment=Deployment.sharded(to_shards, network=network),
        auto_warmup_traces=auto_warmup_traces,
    )
    _drive(reference, stream)

    elastic = MintFramework(
        deployment=Deployment.resharded(from_shards, to_shards, network=network),
        auto_warmup_traces=auto_warmup_traces,
    )
    trigger = int(len(stream) * trigger_frac)
    coordinator: ReshardCoordinator | None = None
    last_now = 0.0
    for index, (now, trace) in enumerate(stream):
        elastic.process_trace(trace, now)
        last_now = now
        if index == trigger:
            coordinator = ReshardCoordinator(
                elastic.backend, elastic.transport, to_shards
            )
            coordinator.start()
        if coordinator is not None and coordinator.active:
            coordinator.step()
    if coordinator is None:  # pragma: no cover - trigger_frac >= 1 guard
        coordinator = ReshardCoordinator(elastic.backend, elastic.transport, to_shards)
    coordinator.run()
    elastic.finalize(last_now)

    violations: list[str] = []
    ref_tables = elastic_byte_tables(reference)
    ela_tables = elastic_byte_tables(elastic)
    for key, want in ref_tables.items():
        got = ela_tables[key]
        if got != want:
            violations.append(f"{key}: migrated {got} != fresh {want}")
    if elastic_query_signature(elastic, stream) != elastic_query_signature(
        reference, stream
    ):
        violations.append("query signatures diverge from the fresh deployment")
    if elastic.stored_trace_ids() != reference.stored_trace_ids():
        violations.append("stored-trace sets diverge from the fresh deployment")
    violations.extend(placement_violations(elastic.backend))
    if elastic.backend.num_shards != to_shards:
        violations.append(
            f"routing modulus is {elastic.backend.num_shards}, not {to_shards}"
        )
    if reference.migration_bytes != 0:
        violations.append(
            "fresh deployment charged the migration meter "
            f"({reference.migration_bytes} bytes)"
        )
    if coordinator.stats.hosts_moved == 0:
        violations.append("no host moved — the reshard was vacuous")
    elif elastic.migration_bytes == 0:
        violations.append("hosts moved but the migration meter reads zero")
    return ReshardExperimentResult(
        workload=workload.name,
        from_shards=from_shards,
        to_shards=to_shards,
        trace_count=len(stream),
        identical=not violations,
        violations=violations,
        migration=coordinator.stats.as_dict(),
        migration_bytes=elastic.migration_bytes,
        byte_tables=ela_tables,
    )


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------
@dataclass
class FailoverExperimentResult:
    """One shard-chaos run checked against the no-chaos deployment."""

    workload: str
    profile: str
    num_shards: int
    trace_count: int
    converged: bool
    violations: list[str] = field(default_factory=list)
    probed_mid_outage: bool = False
    degraded_mid_outage: bool = False
    permanently_degraded: bool = False
    supervisor: dict = field(default_factory=dict)


def run_failover_experiment(
    workload: Workload,
    profile: ShardChaosProfile | str = "crash_restart",
    num_shards: int = 2,
    num_traces: int = 300,
    abnormal_rate: float = 0.02,
    requests_per_minute: float = 6000.0,
    seed: int = 17,
    auto_warmup_traces: int = 50,
    network: "NetworkDescriptor | None" = None,
    outage_start_frac: float = 0.2,
    outage_end_frac: float = 0.5,
) -> FailoverExperimentResult:
    """Drive a stream through shard chaos and check graceful failover.

    The profile's outage windows are fitted to the stream's duration;
    in the middle of the first crash window the harness runs a query
    sweep over everything ingested so far — those queries must degrade
    (no status better than the no-chaos run's, some strictly worse when
    the down shard held data) and must never raise.  After the stream,
    ``finalize`` replays the parked queues; for recoverable profiles
    the final signature and byte tables must equal the no-chaos run's,
    while a permanent crash must stay degraded (and the parked queue
    must still hold the undeliverable reports rather than lose them).
    """
    if isinstance(profile, str):
        profile = SHARD_CHAOS_PROFILES[profile]
    stream, _ = generate_stream(
        workload, num_traces, abnormal_rate, requests_per_minute, seed
    )
    duration_s = stream[-1][0] if stream else 0.0
    fitted = fit_outages(
        profile, duration_s, start_frac=outage_start_frac, end_frac=outage_end_frac
    )
    crash_windows = [o for o in fitted.outages if o.mode == "crash"]
    probe_at = min(
        ((o.start_s + min(o.end_s, duration_s)) / 2.0 for o in crash_windows),
        default=None,
    )
    recoverable = all(not o.is_permanent for o in fitted.outages)

    baseline = MintFramework(
        deployment=Deployment.sharded(num_shards, network=network),
        auto_warmup_traces=auto_warmup_traces,
    )
    _drive(baseline, stream)
    baseline_status = {
        result.trace_id: result.status
        for result in baseline.query_many(t.trace_id for _, t in stream)
    }

    chaotic = MintFramework(
        deployment=Deployment.elastic_sharded(
            num_shards, network=network, shard_chaos=fitted
        ),
        auto_warmup_traces=auto_warmup_traces,
    )
    violations: list[str] = []
    probed = degraded = False
    last_now = 0.0
    for now, trace in stream:
        chaotic.process_trace(trace, now)
        last_now = now
        if probe_at is not None and not probed and now >= probe_at:
            probed = True
            if not chaotic.backend.down_shards():
                violations.append(
                    f"no shard down at the probe point t={now:.2f}s — "
                    "the chaos never fired"
                )
            try:
                for result in chaotic.query_many(
                    t.trace_id for _, t in stream if t.trace_id in baseline_status
                ):
                    want = _STATUS_RANK[baseline_status[result.trace_id]]
                    got = _STATUS_RANK[result.status]
                    if got > want:
                        violations.append(
                            f"mid-outage query of {result.trace_id} answered "
                            f"{result.status}, better than the healthy "
                            f"{baseline_status[result.trace_id]}"
                        )
                    elif got < want:
                        degraded = True
            except Exception as exc:  # noqa: BLE001 - the gate is "never raises"
                violations.append(f"mid-outage query raised {exc!r}")
    chaotic.finalize(last_now)

    supervisor = chaotic.backend.supervisor
    stats = supervisor.stats if supervisor is not None else None
    if stats is None:
        violations.append("no supervisor attached — shard chaos was ignored")
    elif stats.parked == 0:
        violations.append("supervisor parked nothing — the chaos never fired")

    if recoverable:
        if elastic_query_signature(chaotic, stream) != elastic_query_signature(
            baseline, stream
        ):
            violations.append("post-replay query signatures diverge from no-chaos run")
        for key, want in elastic_byte_tables(baseline).items():
            got = elastic_byte_tables(chaotic)[key]
            if got != want:
                violations.append(f"{key}: post-replay {got} != no-chaos {want}")
        if stats is not None and stats.replayed != stats.parked - stats.dropped:
            violations.append(
                f"replayed {stats.replayed} of {stats.parked} parked "
                f"({stats.dropped} dropped) — reports lost"
            )
    permanently_degraded = False
    if not recoverable:
        if supervisor is not None and supervisor.parked_reports == 0:
            violations.append(
                "permanent crash but the redelivery queue is empty — "
                "undeliverable reports were lost or misdelivered"
            )
        permanently_degraded = elastic_query_signature(
            chaotic, stream
        ) != elastic_query_signature(baseline, stream)
        if not permanently_degraded and (stats is None or stats.parked == 0):
            violations.append("permanent crash left no trace at all")
    return FailoverExperimentResult(
        workload=workload.name,
        profile=fitted.name,
        num_shards=num_shards,
        trace_count=len(stream),
        converged=not violations,
        violations=violations,
        probed_mid_outage=probed,
        degraded_mid_outage=degraded,
        permanently_degraded=permanently_degraded,
        supervisor=stats.as_dict() if stats is not None else {},
    )


# ----------------------------------------------------------------------
# Autoscaling
# ----------------------------------------------------------------------
@dataclass
class ElasticLoadTestResult:
    """One Fig. 14 load shape under chaos with the autoscaler attached."""

    test: str
    workload: str
    profile: str
    start_shards: int
    final_shards: int
    trace_count: int
    converged: bool
    violations: list[str] = field(default_factory=list)
    scale_events: list[dict] = field(default_factory=list)
    peak_depth: int = 0
    supervisor: dict = field(default_factory=dict)
    migration_bytes: int = 0


def run_elastic_load_test(
    spec: LoadTestSpec,
    workload: Workload,
    policy: AutoscalePolicy | None = None,
    profile: ShardChaosProfile | str = "crash_restart",
    start_shards: int = 2,
    duration_minutes: float = 1.0,
    scale: float = 0.1,
    seed: int = 21,
    auto_warmup_traces: int = 30,
    network: "NetworkDescriptor | None" = None,
    outage_start_frac: float = 0.2,
    outage_end_frac: float = 0.5,
) -> ElasticLoadTestResult:
    """Drive one Fig. 14 load shape with chaos and autoscaling.

    The shard-chaos profile is fitted to the load test's duration, so
    mid-run a shard goes dark and its deliveries park; the parked queue
    depth is exactly the pressure the :class:`Autoscaler` watches, so
    the outage drives a scale-up — resharding (one host per trace)
    while the load test keeps running.  The run must still converge:
    after replay and finalize, the query signature equals a no-chaos,
    no-autoscaler deployment's at ``start_shards`` (topology invariance
    extends to topologies *chosen by the system itself*).
    """
    if isinstance(profile, str):
        profile = SHARD_CHAOS_PROFILES[profile]
    if policy is None:
        # min_shards pins the floor at the starting count: the scenario
        # measures scale-*up* under backlog pressure, and an idle first
        # tick must not scale the chaos victim out of existence before
        # the outage even starts.
        policy = AutoscalePolicy(
            scale_up_depth=4, cooldown_s=2.0, min_shards=start_shards
        )
    limited = restrict_apis(workload, spec.api_count)
    num_traces = _load_test_traces(spec, duration_minutes, scale)
    stream, _ = generate_stream(
        limited,
        num_traces,
        abnormal_rate=0.02,
        requests_per_minute=spec.qps * 60,
        seed=seed,
    )
    fitted = fit_outages(
        profile,
        num_traces / spec.qps,
        start_frac=outage_start_frac,
        end_frac=outage_end_frac,
    )

    baseline = MintFramework(
        deployment=Deployment.sharded(start_shards, network=network),
        auto_warmup_traces=auto_warmup_traces,
    )
    _drive(baseline, stream)

    elastic = MintFramework(
        deployment=Deployment.elastic_sharded(
            start_shards, network=network, shard_chaos=fitted
        ),
        auto_warmup_traces=auto_warmup_traces,
    )
    scaler = Autoscaler(framework=elastic, policy=policy)
    last_now = 0.0
    for now, trace in stream:
        elastic.process_trace(trace, now)
        scaler.observe(now)
        last_now = now
    scaler.finish()
    elastic.finalize(last_now)

    violations: list[str] = []
    supervisor = elastic.backend.supervisor
    stats = supervisor.stats if supervisor is not None else None
    if stats is None or stats.parked == 0:
        violations.append("shard chaos never fired — the load test proved nothing")
    if not scaler.events:
        violations.append(
            f"queue depth peaked at {scaler.peak_depth} but no scale event "
            f"fired (scale_up_depth={policy.scale_up_depth})"
        )
    if elastic_query_signature(elastic, stream) != elastic_query_signature(
        baseline, stream
    ):
        violations.append("autoscaled run's answers diverge from the baseline")
    violations.extend(placement_violations(elastic.backend))
    return ElasticLoadTestResult(
        test=spec.name,
        workload=workload.name,
        profile=fitted.name,
        start_shards=start_shards,
        final_shards=elastic.backend.num_shards,
        trace_count=len(stream),
        converged=not violations,
        violations=violations,
        scale_events=[event.as_dict() for event in scaler.events],
        peak_depth=scaler.peak_depth,
        supervisor=stats.as_dict() if stats is not None else {},
        migration_bytes=elastic.migration_bytes,
    )
