"""Byte meters: the instruments behind every overhead number.

A :class:`Meter` accumulates (timestamp, bytes) events and can render
them as totals or per-minute series — exactly the MB/min panels of the
paper's Fig. 11 and Fig. 14.

Meters are thread-safe: ``record`` holds a per-meter lock, so a meter
charged from several transport workers (the concurrent ingest plane,
or any future multi-threaded wire) accumulates exactly the bytes it
was given.  The read side (totals, series) takes the same lock for a
consistent snapshot.  The lock is uncontended in single-threaded runs
and costs nothing measurable there — byte charges happen per report,
not per span.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field

from repro.obs.metrics import LatencyStats


class Meter:
    """Accumulates byte counts over simulated time (thread-safe)."""

    def __init__(self, name: str = "meter") -> None:
        self.name = name
        self._total = 0
        self._events = 0
        self._buckets: dict[int, int] = defaultdict(int)
        # Accumulation is guarded: += on three fields is not atomic, and
        # a concurrent worker pool charging one ledger would silently
        # lose updates without this.
        self._lock = threading.Lock()

    @property
    def total_bytes(self) -> int:
        """All bytes recorded so far."""
        return self._total

    @property
    def event_count(self) -> int:
        """Number of record calls."""
        return self._events

    def record(self, nbytes: int, now: float = 0.0) -> None:
        """Charge ``nbytes`` at simulated time ``now``."""
        if nbytes < 0:
            raise ValueError("cannot record negative bytes")
        with self._lock:
            self._total += nbytes
            self._events += 1
            self._buckets[int(now // 60)] += nbytes

    def per_minute_series(self) -> list[tuple[int, int]]:
        """(minute index, bytes) pairs, sorted by minute."""
        with self._lock:
            return sorted(self._buckets.items())

    def mb_per_minute(self) -> float:
        """Average MB/min over the active minutes."""
        with self._lock:
            if not self._buckets:
                return 0.0
            minutes = max(self._buckets) - min(self._buckets) + 1
            return self._total / (1024 * 1024) / minutes

    def reset(self) -> None:
        """Zero the meter."""
        with self._lock:
            self._total = 0
            self._events = 0
            self._buckets.clear()

    def __getstate__(self) -> dict:
        """Pickle support: locks do not cross process boundaries."""
        state = self.__dict__.copy()
        state["_buckets"] = dict(self._buckets)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._buckets = defaultdict(int, state["_buckets"])
        self._lock = threading.Lock()


# LatencyStats moved to the observability plane (PR 9): it is now the
# sample-tracking flavour of ``repro.obs.metrics.Histogram``, so the
# net plane's percentile panels and the obs registry share exactly one
# quantile implementation.  Re-exported here because this module is its
# historical home and every consumer imports it from ``repro.sim``.
__all__ = [
    "LatencyStats",
    "Meter",
    "OverheadLedger",
    "ShardLedgerRow",
]


@dataclass
class OverheadLedger:
    """The pair of meters every tracing framework is evaluated with."""

    network: Meter = field(default_factory=lambda: Meter("network"))
    storage: Meter = field(default_factory=lambda: Meter("storage"))

    def as_dict(self) -> dict[str, int]:
        """Snapshot for reporting."""
        return {
            "network_bytes": self.network.total_bytes,
            "storage_bytes": self.storage.total_bytes,
        }


@dataclass
class ShardLedgerRow:
    """One shard's ledger snapshot in a sharded deployment.

    The single shared row shape for per-shard meter reporting
    (framework, experiment and load-test layers all speak it); these
    are physical per-shard bytes — summed shard storage can exceed the
    deployment figure by the merge layer's replicated pattern bytes.
    ``hosts`` is filled by reporting layers that know the placement.
    """

    shard: int
    network_bytes: int
    storage_bytes: int
    hosts: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, object]:
        """Snapshot for machine-readable reports."""
        return {
            "shard": self.shard,
            "network_bytes": self.network_bytes,
            "storage_bytes": self.storage_bytes,
            "hosts": list(self.hosts),
        }
