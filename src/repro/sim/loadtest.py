"""Load tests and latency probes (paper Figs. 14 and 15).

The paper runs 14 load tests against three replicas of a production
system (no tracing / OT-Head / Mint) and reports ingress/egress
bandwidth, CPU, memory, request latency and query latency.  Here the
replicas are simulated: ingress is the workload's own request volume
(identical across replicas by construction), egress is each framework's
metered network, CPU is measured wall-clock of the tracing pipeline,
and memory is the framework's resident tracing state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.baselines.base import TracingFramework
from repro.framework import MintFramework
from repro.model.encoding import encoded_size
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads.specs import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.chaos import ChaosProfile
    from repro.net.transport import NetworkDescriptor


@dataclass(frozen=True)
class LoadTestSpec:
    """One Fig. 14 load test: request rate and API variety."""

    name: str
    qps: int
    api_count: int


# The 14 load tests from Fig. 14's legend (T1..T14).
FIG14_LOAD_TESTS: tuple[LoadTestSpec, ...] = (
    LoadTestSpec("T1", 200, 5),
    LoadTestSpec("T2", 400, 5),
    LoadTestSpec("T3", 600, 5),
    LoadTestSpec("T4", 800, 5),
    LoadTestSpec("T5", 1000, 5),
    LoadTestSpec("T6", 1000, 5),
    LoadTestSpec("T7", 400, 1),
    LoadTestSpec("T8", 400, 2),
    LoadTestSpec("T9", 1000, 8),
    LoadTestSpec("T10", 600, 3),
    LoadTestSpec("T11", 200, 2),
    LoadTestSpec("T12", 800, 4),
    LoadTestSpec("T13", 200, 4),
    LoadTestSpec("T14", 400, 4),
)


@dataclass
class LoadTestResult:
    """Measurements for one replica in one load test."""

    test: str
    replica: str
    ingress_bytes: int
    egress_bytes: int
    cpu_seconds: float
    memory_bytes: int
    request_latency_overhead_ms: float


def _load_test_traces(spec: LoadTestSpec, duration_minutes: float, scale: float) -> int:
    """Trace count for one load test — the single copy of the sizing
    formula (``scale`` shrinks runs to laptop size while preserving the
    qps ratios between tests); the chaos harness derives the stream's
    simulated duration from the same number, so the two can never
    drift."""
    return max(20, int(spec.qps * 60 * duration_minutes * scale / 10))


def restrict_apis(workload: Workload, api_count: int) -> Workload:
    """A copy of the workload keeping only the first ``api_count`` APIs."""
    apis = workload.apis[: max(1, min(api_count, len(workload.apis)))]
    return Workload(
        name=f"{workload.name}-{len(apis)}apis",
        apis=apis,
        service_nodes=dict(workload.service_nodes),
    )


def tracing_memory_bytes(framework: TracingFramework) -> int:
    """Resident tracing state: pattern libraries, buffers, filters."""
    if not isinstance(framework, MintFramework):
        return 0
    total = 0
    for collector in framework._collectors.values():
        agent = collector.agent
        total += agent.span_parser.library.size_bytes()
        total += agent.trace_parser.library.size_bytes()
        total += agent.params_buffer.used_bytes
        for filt in agent.mounted_library.active_filters().values():
            total += filt.size_bytes
    return total


def run_load_test(
    spec: LoadTestSpec,
    workload: Workload,
    factory: Callable[[], TracingFramework] | None,
    replica: str,
    duration_minutes: float = 1.0,
    scale: float = 0.1,
    seed: int = 21,
) -> LoadTestResult:
    """Drive one replica through one load test.

    ``factory`` of None means the no-tracing replica.  ``scale`` shrinks
    the request count so the full 14-test sweep stays laptop-sized
    while preserving the qps ratios between tests.
    """
    result, _ = _run_load_test_instrumented(
        spec, workload, factory, replica, duration_minutes, scale, seed
    )
    return result


def _run_load_test_instrumented(
    spec: LoadTestSpec,
    workload: Workload,
    factory: Callable[[], TracingFramework] | None,
    replica: str,
    duration_minutes: float = 1.0,
    scale: float = 0.1,
    seed: int = 21,
) -> tuple[LoadTestResult, TracingFramework | None]:
    """Like :func:`run_load_test` but hands back the driven framework,
    so callers can read framework-specific meters (per-shard ledgers)."""
    limited = restrict_apis(workload, spec.api_count)
    num_traces = _load_test_traces(spec, duration_minutes, scale)
    stream, _ = generate_stream(
        limited,
        num_traces,
        abnormal_rate=0.02,
        requests_per_minute=spec.qps * 60,
        seed=seed,
    )
    ingress = sum(encoded_size(trace) for _, trace in stream)
    if factory is None:
        return (
            LoadTestResult(
                test=spec.name,
                replica=replica,
                ingress_bytes=ingress,
                egress_bytes=0,
                cpu_seconds=0.0,
                memory_bytes=0,
                request_latency_overhead_ms=0.0,
            ),
            None,
        )
    framework = factory()
    started = time.perf_counter()
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    cpu = time.perf_counter() - started
    total_spans = sum(len(trace.spans) for _, trace in stream)
    per_span_ms = (cpu / max(1, total_spans)) * 1000.0
    return (
        LoadTestResult(
            test=spec.name,
            replica=replica,
            ingress_bytes=ingress,
            egress_bytes=framework.network_bytes,
            cpu_seconds=cpu,
            memory_bytes=tracing_memory_bytes(framework),
            request_latency_overhead_ms=per_span_ms,
        ),
        framework,
    )


@dataclass
class ShardedLoadTestResult:
    """One Fig. 14-style load test against the sharded collection plane.

    ``overall`` is comparable 1:1 with a single-backend
    :class:`LoadTestResult`; ``shard_egress_bytes`` /
    ``shard_storage_bytes`` split the same run by owning shard
    (physical bytes — summed shard storage exceeds the overall figure
    by exactly ``replicated_pattern_bytes``).
    """

    overall: LoadTestResult
    num_shards: int
    shard_egress_bytes: list[int] = field(default_factory=list)
    shard_storage_bytes: list[int] = field(default_factory=list)
    replicated_pattern_bytes: int = 0


def run_sharded_load_test(
    spec: LoadTestSpec,
    workload: Workload,
    num_shards: int,
    duration_minutes: float = 1.0,
    scale: float = 0.1,
    seed: int = 21,
    auto_warmup_traces: int = 30,
    deployment: Deployment | None = None,
) -> ShardedLoadTestResult:
    """Drive one load test against Mint fanned over ``num_shards``.

    The replica name carries the shard count (``Mint x4``) so sweeps
    at 1/2/4/8 shards report side by side.  ``deployment`` overrides
    the default ``Deployment.sharded(num_shards)`` descriptor (it must
    still describe a sharded topology with ``num_shards`` shards).
    """
    if deployment is None:
        deployment = Deployment.sharded(num_shards)
    result, framework = _run_load_test_instrumented(
        spec,
        workload,
        lambda: MintFramework(
            deployment=deployment, auto_warmup_traces=auto_warmup_traces
        ),
        f"Mint x{num_shards}",
        duration_minutes,
        scale,
        seed,
    )
    assert isinstance(framework, MintFramework) and framework.deployment.is_sharded
    rows = framework.shard_meter_rows()
    return ShardedLoadTestResult(
        overall=result,
        num_shards=num_shards,
        shard_egress_bytes=[row.network_bytes for row in rows],
        shard_storage_bytes=[row.storage_bytes for row in rows],
        replicated_pattern_bytes=framework.backend.merged.replicated_pattern_bytes(),
    )


@dataclass
class NetLoadTestResult:
    """One load test over the simulated network plane.

    ``overall`` is comparable 1:1 with the in-process replicas'
    :class:`LoadTestResult` (egress is charged at the wire identically,
    so lossy runs report the same egress as lossless ones);
    ``retransmit_bytes`` and ``delivery`` carry the wire's own story —
    redundant bytes, drop/duplicate/retransmission counts, queue
    depths, per-link latency percentiles.
    """

    overall: LoadTestResult
    profile: str
    retransmit_bytes: int = 0
    delivery: dict = field(default_factory=dict)


# The chaos load scenarios: each pairs a Fig. 14 load shape with one
# failure mode, so the sweep exercises loss under high qps, duplication
# under API variety, jitter at sustained load, and a mid-run partition.
CHAOS_SCENARIOS: tuple[tuple[str, LoadTestSpec, str], ...] = (
    ("drop@T5", FIG14_LOAD_TESTS[4], "drop"),
    ("duplicate@T9", FIG14_LOAD_TESTS[8], "duplicate"),
    ("delay@T3", FIG14_LOAD_TESTS[2], "delay"),
    ("partition@T12", FIG14_LOAD_TESTS[11], "partition"),
)


def run_net_load_test(
    spec: LoadTestSpec,
    workload: Workload,
    profile: "ChaosProfile | None" = None,
    network: "NetworkDescriptor | None" = None,
    num_shards: int = 0,
    duration_minutes: float = 1.0,
    scale: float = 0.1,
    seed: int = 21,
    auto_warmup_traces: int = 30,
) -> NetLoadTestResult:
    """Drive one load test over the simulated network plane.

    ``profile`` of None runs the lossless default wire; otherwise the
    profile is injected into ``network`` (a batching wire by default)
    with its partition windows fitted to the stream's duration.  The
    replica name carries both the load shape and the wire, so chaos
    sweeps report side by side with the in-process replicas.
    """
    from repro.net.chaos import LOSSLESS, fit_partitions
    from repro.net.transport import CHAOS_WIRE

    if network is None:
        network = CHAOS_WIRE
    chaos = profile if profile is not None else LOSSLESS
    num_traces = _load_test_traces(spec, duration_minutes, scale)
    chaos = fit_partitions(chaos, num_traces / spec.qps)
    descriptor = network.with_chaos(chaos, seed=seed)
    deployment = Deployment(num_shards=num_shards, network=descriptor)
    result, framework = _run_load_test_instrumented(
        spec,
        workload,
        lambda: MintFramework(
            deployment=deployment, auto_warmup_traces=auto_warmup_traces
        ),
        f"Mint {descriptor.describe()}",
        duration_minutes,
        scale,
        seed,
    )
    assert isinstance(framework, MintFramework)
    return NetLoadTestResult(
        overall=result,
        profile=chaos.name,
        retransmit_bytes=framework.retransmit_bytes,
        delivery=framework.net_stats() or {},
    )


def run_chaos_load_tests(
    workload: Workload,
    scenarios: tuple[tuple[str, LoadTestSpec, str], ...] = CHAOS_SCENARIOS,
    duration_minutes: float = 1.0,
    scale: float = 0.1,
    seed: int = 21,
    auto_warmup_traces: int = 30,
) -> dict[str, NetLoadTestResult]:
    """Run the standard chaos scenario sweep; keyed by scenario name."""
    from repro.net.chaos import CHAOS_PROFILES

    results: dict[str, NetLoadTestResult] = {}
    for name, spec, profile_key in scenarios:
        results[name] = run_net_load_test(
            spec,
            workload,
            profile=CHAOS_PROFILES[profile_key],
            duration_minutes=duration_minutes,
            scale=scale,
            seed=seed,
            auto_warmup_traces=auto_warmup_traces,
        )
    return results


def measure_query_latency(
    framework: TracingFramework, trace_ids: list[str], repeats: int = 1
) -> dict[str, float]:
    """Mean and P95 query latency in milliseconds."""
    samples: list[float] = []
    for _ in range(repeats):
        for trace_id in trace_ids:
            started = time.perf_counter()
            framework.query(trace_id)
            samples.append((time.perf_counter() - started) * 1000.0)
    if not samples:
        return {"mean_ms": 0.0, "p95_ms": 0.0}
    ordered = sorted(samples)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    return {"mean_ms": sum(samples) / len(samples), "p95_ms": p95}
