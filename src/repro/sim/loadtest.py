"""Load tests and latency probes (paper Figs. 14 and 15).

The paper runs 14 load tests against three replicas of a production
system (no tracing / OT-Head / Mint) and reports ingress/egress
bandwidth, CPU, memory, request latency and query latency.  Here the
replicas are simulated: ingress is the workload's own request volume
(identical across replicas by construction), egress is each framework's
metered network, CPU is measured wall-clock of the tracing pipeline,
and memory is the framework's resident tracing state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.base import TracingFramework
from repro.baselines.mint_framework import MintFramework
from repro.model.encoding import encoded_size
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads.specs import Workload


@dataclass(frozen=True)
class LoadTestSpec:
    """One Fig. 14 load test: request rate and API variety."""

    name: str
    qps: int
    api_count: int


# The 14 load tests from Fig. 14's legend (T1..T14).
FIG14_LOAD_TESTS: tuple[LoadTestSpec, ...] = (
    LoadTestSpec("T1", 200, 5),
    LoadTestSpec("T2", 400, 5),
    LoadTestSpec("T3", 600, 5),
    LoadTestSpec("T4", 800, 5),
    LoadTestSpec("T5", 1000, 5),
    LoadTestSpec("T6", 1000, 5),
    LoadTestSpec("T7", 400, 1),
    LoadTestSpec("T8", 400, 2),
    LoadTestSpec("T9", 1000, 8),
    LoadTestSpec("T10", 600, 3),
    LoadTestSpec("T11", 200, 2),
    LoadTestSpec("T12", 800, 4),
    LoadTestSpec("T13", 200, 4),
    LoadTestSpec("T14", 400, 4),
)


@dataclass
class LoadTestResult:
    """Measurements for one replica in one load test."""

    test: str
    replica: str
    ingress_bytes: int
    egress_bytes: int
    cpu_seconds: float
    memory_bytes: int
    request_latency_overhead_ms: float


def restrict_apis(workload: Workload, api_count: int) -> Workload:
    """A copy of the workload keeping only the first ``api_count`` APIs."""
    apis = workload.apis[: max(1, min(api_count, len(workload.apis)))]
    return Workload(
        name=f"{workload.name}-{len(apis)}apis",
        apis=apis,
        service_nodes=dict(workload.service_nodes),
    )


def tracing_memory_bytes(framework: TracingFramework) -> int:
    """Resident tracing state: pattern libraries, buffers, filters."""
    if not isinstance(framework, MintFramework):
        return 0
    total = 0
    for collector in framework._collectors.values():
        agent = collector.agent
        total += agent.span_parser.library.size_bytes()
        total += agent.trace_parser.library.size_bytes()
        total += agent.params_buffer.used_bytes
        for filt in agent.mounted_library.active_filters().values():
            total += filt.size_bytes
    return total


def run_load_test(
    spec: LoadTestSpec,
    workload: Workload,
    factory: Callable[[], TracingFramework] | None,
    replica: str,
    duration_minutes: float = 1.0,
    scale: float = 0.1,
    seed: int = 21,
) -> LoadTestResult:
    """Drive one replica through one load test.

    ``factory`` of None means the no-tracing replica.  ``scale`` shrinks
    the request count so the full 14-test sweep stays laptop-sized
    while preserving the qps ratios between tests.
    """
    result, _ = _run_load_test_instrumented(
        spec, workload, factory, replica, duration_minutes, scale, seed
    )
    return result


def _run_load_test_instrumented(
    spec: LoadTestSpec,
    workload: Workload,
    factory: Callable[[], TracingFramework] | None,
    replica: str,
    duration_minutes: float = 1.0,
    scale: float = 0.1,
    seed: int = 21,
) -> tuple[LoadTestResult, TracingFramework | None]:
    """Like :func:`run_load_test` but hands back the driven framework,
    so callers can read framework-specific meters (per-shard ledgers)."""
    limited = restrict_apis(workload, spec.api_count)
    num_traces = max(20, int(spec.qps * 60 * duration_minutes * scale / 10))
    stream, _ = generate_stream(
        limited,
        num_traces,
        abnormal_rate=0.02,
        requests_per_minute=spec.qps * 60,
        seed=seed,
    )
    ingress = sum(encoded_size(trace) for _, trace in stream)
    if factory is None:
        return (
            LoadTestResult(
                test=spec.name,
                replica=replica,
                ingress_bytes=ingress,
                egress_bytes=0,
                cpu_seconds=0.0,
                memory_bytes=0,
                request_latency_overhead_ms=0.0,
            ),
            None,
        )
    framework = factory()
    started = time.perf_counter()
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)
    cpu = time.perf_counter() - started
    total_spans = sum(len(trace.spans) for _, trace in stream)
    per_span_ms = (cpu / max(1, total_spans)) * 1000.0
    return (
        LoadTestResult(
            test=spec.name,
            replica=replica,
            ingress_bytes=ingress,
            egress_bytes=framework.network_bytes,
            cpu_seconds=cpu,
            memory_bytes=tracing_memory_bytes(framework),
            request_latency_overhead_ms=per_span_ms,
        ),
        framework,
    )


@dataclass
class ShardedLoadTestResult:
    """One Fig. 14-style load test against the sharded collection plane.

    ``overall`` is comparable 1:1 with a single-backend
    :class:`LoadTestResult`; ``shard_egress_bytes`` /
    ``shard_storage_bytes`` split the same run by owning shard
    (physical bytes — summed shard storage exceeds the overall figure
    by exactly ``replicated_pattern_bytes``).
    """

    overall: LoadTestResult
    num_shards: int
    shard_egress_bytes: list[int] = field(default_factory=list)
    shard_storage_bytes: list[int] = field(default_factory=list)
    replicated_pattern_bytes: int = 0


def run_sharded_load_test(
    spec: LoadTestSpec,
    workload: Workload,
    num_shards: int,
    duration_minutes: float = 1.0,
    scale: float = 0.1,
    seed: int = 21,
    auto_warmup_traces: int = 30,
    deployment: Deployment | None = None,
) -> ShardedLoadTestResult:
    """Drive one load test against Mint fanned over ``num_shards``.

    The replica name carries the shard count (``Mint x4``) so sweeps
    at 1/2/4/8 shards report side by side.  ``deployment`` overrides
    the default ``Deployment.sharded(num_shards)`` descriptor (it must
    still describe a sharded topology with ``num_shards`` shards).
    """
    if deployment is None:
        deployment = Deployment.sharded(num_shards)
    result, framework = _run_load_test_instrumented(
        spec,
        workload,
        lambda: MintFramework(
            deployment=deployment, auto_warmup_traces=auto_warmup_traces
        ),
        f"Mint x{num_shards}",
        duration_minutes,
        scale,
        seed,
    )
    assert isinstance(framework, MintFramework) and framework.deployment.is_sharded
    rows = framework.shard_meter_rows()
    return ShardedLoadTestResult(
        overall=result,
        num_shards=num_shards,
        shard_egress_bytes=[row.network_bytes for row in rows],
        shard_storage_bytes=[row.storage_bytes for row in rows],
        replicated_pattern_bytes=framework.backend.merged.replicated_pattern_bytes(),
    )


def measure_query_latency(
    framework: TracingFramework, trace_ids: list[str], repeats: int = 1
) -> dict[str, float]:
    """Mean and P95 query latency in milliseconds."""
    samples: list[float] = []
    for _ in range(repeats):
        for trace_id in trace_ids:
            started = time.perf_counter()
            framework.query(trace_id)
            samples.append((time.perf_counter() - started) * 1000.0)
    if not samples:
        return {"mean_ms": 0.0, "p95_ms": 0.0}
    ordered = sorted(samples)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
    return {"mean_ms": sum(samples) / len(samples), "p95_ms": p95}
