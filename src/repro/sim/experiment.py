"""The shared experiment harness behind Figs. 11/12 and Table 3.

One experiment = one workload streamed (with fault injection) through
several tracing frameworks, all charged through their own meters, then
interrogated: bytes moved, bytes stored, query outcomes, and the trace
populations each framework can feed to downstream analysis.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.analysis.metrics import hit_breakdown
from repro.baselines.base import TracingFramework
from repro.framework import MintFramework
from repro.model.trace import Trace
from repro.rca.views import TraceView, views_from_cursor, views_from_traces
from repro.sim.meters import ShardLedgerRow
from repro.transport import Deployment
from repro.workloads.faults import FaultInjector, FaultSpec, FaultType
from repro.workloads.generator import WorkloadDriver
from repro.workloads.queries import TraceRecord
from repro.workloads.specs import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.chaos import ChaosProfile
    from repro.net.transport import NetworkDescriptor

FrameworkFactory = Callable[[], TracingFramework]


@dataclass
class FrameworkRun:
    """One framework's measurements over the generated stream."""

    name: str
    network_bytes: int
    storage_bytes: int
    process_seconds: float
    hits: dict[str, int] = field(default_factory=dict)
    framework: TracingFramework | None = None


@dataclass
class ExperimentResult:
    """Everything a bench needs to print its table or figure series."""

    workload: str
    trace_count: int
    raw_bytes: int
    runs: dict[str, FrameworkRun] = field(default_factory=dict)
    traces: list[Trace] = field(default_factory=list)
    records: list[TraceRecord] = field(default_factory=list)
    fault_targets: dict[str, str] = field(default_factory=dict)


def generate_stream(
    workload: Workload,
    num_traces: int,
    abnormal_rate: float = 0.05,
    requests_per_minute: float = 6000.0,
    seed: int = 1,
    fault_types: list[FaultType] | None = None,
) -> tuple[list[tuple[float, Trace]], dict[str, str]]:
    """A deterministic (timestamp, trace) stream with injected faults.

    Returns the stream and a map of trace id -> faulted service for the
    abnormal traces (the RCA ground truth).
    """
    driver = WorkloadDriver(
        workload, seed=seed, requests_per_minute=requests_per_minute
    )
    injector = FaultInjector(seed=seed ^ 0x77)
    rng = random.Random(seed ^ 0x3333)
    types = fault_types or list(FaultType)
    stream: list[tuple[float, Trace]] = []
    fault_targets: dict[str, str] = {}
    for now, trace in driver.traces(num_traces):
        if rng.random() < abnormal_rate:
            target = rng.choice(sorted(trace.services))
            trace = injector.inject(trace, FaultSpec(rng.choice(types), target))
            fault_targets[trace.trace_id] = target
        stream.append((now, trace))
    return stream, fault_targets


def run_experiment(
    workload: Workload,
    factories: dict[str, FrameworkFactory],
    num_traces: int = 2000,
    abnormal_rate: float = 0.05,
    requests_per_minute: float = 6000.0,
    seed: int = 1,
    query_all: bool = True,
) -> ExperimentResult:
    """Stream one workload through every framework and measure."""
    from repro.model.encoding import encoded_size

    stream, fault_targets = generate_stream(
        workload, num_traces, abnormal_rate, requests_per_minute, seed
    )
    raw_bytes = sum(encoded_size(trace) for _, trace in stream)
    result = ExperimentResult(
        workload=workload.name,
        trace_count=len(stream),
        raw_bytes=raw_bytes,
        traces=[trace for _, trace in stream],
        records=[
            TraceRecord(
                trace_id=trace.trace_id,
                timestamp=now,
                is_abnormal=trace.trace_id in fault_targets,
            )
            for now, trace in stream
        ],
        fault_targets=fault_targets,
    )
    for name, factory in factories.items():
        framework = factory()
        started = time.perf_counter()
        last_now = 0.0
        for now, trace in stream:
            framework.process_trace(trace, now)
            last_now = now
        framework.finalize(last_now)
        elapsed = time.perf_counter() - started
        # One batched sweep through the unified query plane, folded by
        # the shared metric helper (plain string keys for the tables).
        hits = hit_breakdown(
            answer.status
            for answer in framework.query_many(t.trace_id for _, t in stream)
        ) if query_all else hit_breakdown(())
        result.runs[name] = FrameworkRun(
            name=name,
            network_bytes=framework.network_bytes,
            storage_bytes=framework.storage_bytes,
            process_seconds=elapsed,
            hits=hits,
            framework=framework,
        )
    return result


@dataclass
class ShardedScalingResult:
    """The multi-agent topology mode's output: Mint at several shard
    counts over one stream, with the single-backend run as reference.

    ``runs`` is keyed by shard count; ``shard_meters`` carries each
    run's per-shard network/storage panels; ``invariant`` records
    whether every sharded run matched the reference's query outcomes
    and byte tables exactly (the correctness contract of the sharded
    collection plane).
    """

    workload: str
    trace_count: int
    reference: FrameworkRun
    runs: dict[int, FrameworkRun] = field(default_factory=dict)
    shard_meters: dict[int, list[ShardLedgerRow]] = field(default_factory=dict)
    replicated_pattern_bytes: dict[int, int] = field(default_factory=dict)
    invariant: bool = True
    violations: list[str] = field(default_factory=list)


def run_sharded_experiment(
    workload: Workload,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    num_traces: int = 600,
    abnormal_rate: float = 0.05,
    requests_per_minute: float = 6000.0,
    seed: int = 1,
    auto_warmup_traces: int = 100,
    deployments: dict[int, Deployment] | None = None,
) -> ShardedScalingResult:
    """The multi-agent topology mode (spans routed by owning service).

    One deterministic stream is generated once; sub-traces reach each
    host's agent exactly as in the single-backend experiment (the
    workload's service->node placement routes every span to its owning
    service's host), while collector reports land on the shard owning
    the host.  Mint is run once with the reference single backend and
    once per :class:`~repro.transport.deployment.Deployment` descriptor
    (by default ``Deployment.sharded(count)`` per requested count;
    ``deployments`` overrides descriptors for any subset of the counts
    — the hook for future transport/topology variants), then query
    outcomes and byte tables are cross-checked — a run that diverges
    from the reference in any hit status, network total or storage
    table is recorded as an invariance violation.
    """
    deployments = {
        count: Deployment.sharded(count) for count in shard_counts
    } | (deployments or {})
    factories: dict[str, FrameworkFactory] = {
        "Mint": lambda: MintFramework(auto_warmup_traces=auto_warmup_traces)
    }
    for count in shard_counts:
        factories[f"Mint x{count}"] = (
            lambda deployment=deployments[count]: MintFramework(
                deployment=deployment, auto_warmup_traces=auto_warmup_traces
            )
        )
    experiment = run_experiment(
        workload,
        factories,
        num_traces=num_traces,
        abnormal_rate=abnormal_rate,
        requests_per_minute=requests_per_minute,
        seed=seed,
    )
    reference = experiment.runs["Mint"]
    result = ShardedScalingResult(
        workload=experiment.workload,
        trace_count=experiment.trace_count,
        reference=reference,
    )
    for count in shard_counts:
        run = experiment.runs[f"Mint x{count}"]
        result.runs[count] = run
        framework = run.framework
        if isinstance(framework, MintFramework) and framework.deployment.is_sharded:
            summaries = {s.shard: s for s in framework.shard_summaries()}
            rows = framework.shard_meter_rows()
            for row in rows:
                row.hosts = list(summaries[row.shard].hosts)
            result.shard_meters[count] = rows
            result.replicated_pattern_bytes[count] = (
                framework.backend.merged.replicated_pattern_bytes()
            )
        for metric, got, want in (
            ("hits", run.hits, reference.hits),
            ("network_bytes", run.network_bytes, reference.network_bytes),
            ("storage_bytes", run.storage_bytes, reference.storage_bytes),
        ):
            if got != want:
                result.invariant = False
                result.violations.append(
                    f"shards={count}: {metric} {got!r} != reference {want!r}"
                )
    return result


@dataclass
class NetChaosRun:
    """Mint over one simulated-network configuration, checked against
    the lossless in-process reference.

    ``converged`` records the network plane's contract: query statuses
    and byte tables identical to the reference, the wire's overhead
    visible only on ``retransmit_bytes`` and in ``delivery`` (drop /
    duplicate / retransmission counts, queue depths, per-link latency).
    """

    profile: str
    run: FrameworkRun
    retransmit_bytes: int = 0
    delivery: dict = field(default_factory=dict)
    converged: bool = True
    violations: list[str] = field(default_factory=list)


@dataclass
class NetExperimentResult:
    """The network plane mode: one stream, one topology, many wires.

    ``reference`` is the in-process (LocalTransport) run; ``lossless``
    is the default NetTransport, whose check is the stricter
    bit-identity (meter series included); ``chaos`` maps profile name
    to its convergence-checked run.
    """

    workload: str
    trace_count: int
    reference: FrameworkRun
    lossless: NetChaosRun
    chaos: dict[str, NetChaosRun] = field(default_factory=dict)
    converged: bool = True
    violations: list[str] = field(default_factory=list)


def run_net_experiment(
    workload: Workload,
    profiles: dict[str, "ChaosProfile"] | None = None,
    num_traces: int = 600,
    abnormal_rate: float = 0.05,
    requests_per_minute: float = 6000.0,
    seed: int = 1,
    auto_warmup_traces: int = 100,
    num_shards: int = 0,
    network: "NetworkDescriptor | None" = None,
) -> NetExperimentResult:
    """The network plane mode: the same stream over progressively worse
    wires.

    Mint runs once over the in-process transport (the reference), once
    over the default lossless ``NetTransport`` (checked bit-identical:
    byte tables, per-minute network/storage meter series, per-trace
    query statuses), and once per chaos profile over a batching wire
    with that profile injected (checked for convergence: identical
    query statuses and byte tables, overhead confined to the retransmit
    meter).  Partition windows are fitted to the stream's duration so
    outages always overlap the traffic.
    """
    from repro.net.chaos import CHAOS_PROFILES, fit_partitions
    from repro.net.transport import CHAOS_WIRE, NetworkDescriptor

    if profiles is None:
        profiles = dict(CHAOS_PROFILES)
    if network is None:
        network = CHAOS_WIRE
    topology = (
        Deployment.single() if num_shards == 0 else Deployment.sharded(num_shards)
    )
    stream, _ = generate_stream(
        workload, num_traces, abnormal_rate, requests_per_minute, seed
    )
    duration_s = stream[-1][0] if stream else 0.0

    def drive(deployment: Deployment) -> tuple[FrameworkRun, list[tuple[str, str]]]:
        """One full run plus its per-trace status signature (queried
        once; the hit counts are folded from the same sweep)."""
        framework = MintFramework(
            deployment=deployment, auto_warmup_traces=auto_warmup_traces
        )
        started = time.perf_counter()
        last_now = 0.0
        for now, trace in stream:
            framework.process_trace(trace, now)
            last_now = now
        framework.finalize(last_now)
        elapsed = time.perf_counter() - started
        signature = [
            (result.trace_id, result.status)
            for result in framework.query_many(t.trace_id for _, t in stream)
        ]
        hits = hit_breakdown(status for _, status in signature)
        run = FrameworkRun(
            name=framework.name,
            network_bytes=framework.network_bytes,
            storage_bytes=framework.storage_bytes,
            process_seconds=elapsed,
            hits=hits,
            framework=framework,
        )
        return run, signature

    reference, reference_statuses = drive(topology)

    def check(run: FrameworkRun, statuses: list[tuple[str, str]], label: str) -> list[str]:
        violations = []
        if run.network_bytes != reference.network_bytes:
            violations.append(
                f"{label}: network_bytes {run.network_bytes} != "
                f"reference {reference.network_bytes}"
            )
        if run.storage_bytes != reference.storage_bytes:
            violations.append(
                f"{label}: storage_bytes {run.storage_bytes} != "
                f"reference {reference.storage_bytes}"
            )
        if statuses != reference_statuses:
            violations.append(f"{label}: query statuses diverge from reference")
        return violations

    lossless_run, lossless_statuses = drive(
        Deployment(num_shards=num_shards, network=NetworkDescriptor.lossless())
    )
    lossless_violations = check(lossless_run, lossless_statuses, "lossless-net")
    for meter in ("network", "storage"):
        got = getattr(lossless_run.framework.ledger, meter).per_minute_series()
        want = getattr(reference.framework.ledger, meter).per_minute_series()
        if got != want:
            lossless_violations.append(
                f"lossless-net: {meter} per-minute series diverges from reference"
            )
    result = NetExperimentResult(
        workload=workload.name,
        trace_count=len(stream),
        reference=reference,
        lossless=NetChaosRun(
            profile="lossless",
            run=lossless_run,
            retransmit_bytes=lossless_run.framework.retransmit_bytes,
            delivery=lossless_run.framework.net_stats() or {},
            converged=not lossless_violations,
            violations=lossless_violations,
        ),
    )

    for name, profile in sorted(profiles.items()):
        fitted = fit_partitions(profile, duration_s)
        chaos_run, chaos_statuses = drive(
            Deployment(
                num_shards=num_shards, network=network.with_chaos(fitted, seed=seed)
            )
        )
        violations = check(chaos_run, chaos_statuses, f"chaos-{name}")
        result.chaos[name] = NetChaosRun(
            profile=name,
            run=chaos_run,
            retransmit_bytes=chaos_run.framework.retransmit_bytes,
            delivery=chaos_run.framework.net_stats() or {},
            converged=not violations,
            violations=violations,
        )

    all_runs = [result.lossless, *result.chaos.values()]
    result.violations = [v for run in all_runs for v in run.violations]
    result.converged = not result.violations
    return result


def rca_views_for_framework(
    run: FrameworkRun, traces: list[Trace]
) -> list[TraceView]:
    """The trace population a framework can feed to RCA methods.

    '1 or 0' frameworks contribute exactly the traces they stored.
    Mint contributes exact traces for sampled requests plus approximate
    views for everything else — the paper's Table 3 setting.
    """
    framework = run.framework
    if framework is None:
        return []
    by_id = {trace.trace_id: trace for trace in traces}
    stored = framework.stored_trace_ids()
    views = views_from_traces(by_id[tid] for tid in stored if tid in by_id)
    if isinstance(framework, MintFramework):
        # One batched cursor over the unsampled remainder: partial hits
        # contribute approximate views, misses nothing (Mint's exact
        # hits are already covered by the stored population above).
        missing = [tid for tid in by_id if tid not in stored]
        views.extend(views_from_cursor(framework.query_many(missing)))
    return views
