"""The shared experiment harness behind Figs. 11/12 and Table 3.

One experiment = one workload streamed (with fault injection) through
several tracing frameworks, all charged through their own meters, then
interrogated: bytes moved, bytes stored, query outcomes, and the trace
populations each framework can feed to downstream analysis.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.base import TracingFramework
from repro.baselines.mint_framework import MintFramework
from repro.model.trace import Trace
from repro.rca.views import TraceView, view_from_approximate, views_from_traces
from repro.workloads.faults import FaultInjector, FaultSpec, FaultType
from repro.workloads.generator import WorkloadDriver
from repro.workloads.queries import TraceRecord
from repro.workloads.specs import Workload

FrameworkFactory = Callable[[], TracingFramework]


@dataclass
class FrameworkRun:
    """One framework's measurements over the generated stream."""

    name: str
    network_bytes: int
    storage_bytes: int
    process_seconds: float
    hits: dict[str, int] = field(default_factory=dict)
    framework: TracingFramework | None = None


@dataclass
class ExperimentResult:
    """Everything a bench needs to print its table or figure series."""

    workload: str
    trace_count: int
    raw_bytes: int
    runs: dict[str, FrameworkRun] = field(default_factory=dict)
    traces: list[Trace] = field(default_factory=list)
    records: list[TraceRecord] = field(default_factory=list)
    fault_targets: dict[str, str] = field(default_factory=dict)


def generate_stream(
    workload: Workload,
    num_traces: int,
    abnormal_rate: float = 0.05,
    requests_per_minute: float = 6000.0,
    seed: int = 1,
    fault_types: list[FaultType] | None = None,
) -> tuple[list[tuple[float, Trace]], dict[str, str]]:
    """A deterministic (timestamp, trace) stream with injected faults.

    Returns the stream and a map of trace id -> faulted service for the
    abnormal traces (the RCA ground truth).
    """
    driver = WorkloadDriver(
        workload, seed=seed, requests_per_minute=requests_per_minute
    )
    injector = FaultInjector(seed=seed ^ 0x77)
    rng = random.Random(seed ^ 0x3333)
    types = fault_types or list(FaultType)
    stream: list[tuple[float, Trace]] = []
    fault_targets: dict[str, str] = {}
    for now, trace in driver.traces(num_traces):
        if rng.random() < abnormal_rate:
            target = rng.choice(sorted(trace.services))
            trace = injector.inject(trace, FaultSpec(rng.choice(types), target))
            fault_targets[trace.trace_id] = target
        stream.append((now, trace))
    return stream, fault_targets


def run_experiment(
    workload: Workload,
    factories: dict[str, FrameworkFactory],
    num_traces: int = 2000,
    abnormal_rate: float = 0.05,
    requests_per_minute: float = 6000.0,
    seed: int = 1,
    query_all: bool = True,
) -> ExperimentResult:
    """Stream one workload through every framework and measure."""
    from repro.model.encoding import encoded_size

    stream, fault_targets = generate_stream(
        workload, num_traces, abnormal_rate, requests_per_minute, seed
    )
    raw_bytes = sum(encoded_size(trace) for _, trace in stream)
    result = ExperimentResult(
        workload=workload.name,
        trace_count=len(stream),
        raw_bytes=raw_bytes,
        traces=[trace for _, trace in stream],
        records=[
            TraceRecord(
                trace_id=trace.trace_id,
                timestamp=now,
                is_abnormal=trace.trace_id in fault_targets,
            )
            for now, trace in stream
        ],
        fault_targets=fault_targets,
    )
    for name, factory in factories.items():
        framework = factory()
        started = time.perf_counter()
        last_now = 0.0
        for now, trace in stream:
            framework.process_trace(trace, now)
            last_now = now
        framework.finalize(last_now)
        elapsed = time.perf_counter() - started
        hits: dict[str, int] = {"exact": 0, "partial": 0, "miss": 0}
        if query_all:
            for _, trace in stream:
                hits[framework.query(trace.trace_id).status] += 1
        result.runs[name] = FrameworkRun(
            name=name,
            network_bytes=framework.network_bytes,
            storage_bytes=framework.storage_bytes,
            process_seconds=elapsed,
            hits=hits,
            framework=framework,
        )
    return result


def rca_views_for_framework(
    run: FrameworkRun, traces: list[Trace]
) -> list[TraceView]:
    """The trace population a framework can feed to RCA methods.

    '1 or 0' frameworks contribute exactly the traces they stored.
    Mint contributes exact traces for sampled requests plus approximate
    views for everything else — the paper's Table 3 setting.
    """
    framework = run.framework
    if framework is None:
        return []
    by_id = {trace.trace_id: trace for trace in traces}
    stored = framework.stored_trace_ids()
    views = views_from_traces(by_id[tid] for tid in stored if tid in by_id)
    if isinstance(framework, MintFramework):
        for trace_id, trace in by_id.items():
            if trace_id in stored:
                continue
            query = framework.query_full(trace_id)
            if query.approximate is not None:
                views.append(view_from_approximate(query.approximate))
    return views
