"""Concurrent-ingest harnesses: worker-count invariance and mid-run reads.

Two experiment modes over the same deterministic streams every other
harness uses:

* :func:`run_concurrent_experiment` — drive one stream through a
  sequential reference and through parallel deployments at several
  worker counts (thread or process lanes), fingerprint each run with
  the shared oracle (:mod:`repro.concurrent.verify`) and return the
  violations — empty means bit-identical byte tables, meter series,
  shard ledgers, query signatures and stored-trace sets;
* :func:`run_snapshot_experiment` — interleave ingest with mid-run
  queries and pattern-plane snapshot reads, checking that snapshots
  are versioned monotonically, never lose patterns, and that mid-run
  answers match the sequential run's at the same prefix.

Every function returns violations instead of asserting, so the bench
gate (``run_concurrent_bench.py --check``) and the unit tests share
one implementation of the checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.concurrent.verify import compare_fingerprints, fingerprint
from repro.framework import MintFramework
from repro.sim.experiment import generate_stream
from repro.transport import Deployment
from repro.workloads.specs import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.trace import Trace

DEFAULT_WORKER_COUNTS = (1, 2, 4)


@dataclass
class ConcurrentExperimentResult:
    """Everything one invariance experiment produced."""

    workload: str
    deployment_label: str
    worker_counts: tuple[int, ...]
    mode: str
    violations: list[str] = field(default_factory=list)
    epochs_applied: dict[int, int] = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        """True when every parallel run matched the reference bit-for-bit."""
        return not self.violations


def _drive(framework: MintFramework, stream: list[tuple[float, "Trace"]]) -> None:
    last_now = 0.0
    for now, trace in stream:
        framework.process_trace(trace, now)
        last_now = now
    framework.finalize(last_now)


def _deployment(num_shards: int, workers: int, mode: str, epoch: int) -> Deployment:
    if num_shards > 0:
        return Deployment.sharded(
            num_shards, workers=workers, worker_mode=mode, ingest_epoch=epoch
        )
    return Deployment.single(workers=workers, worker_mode=mode, ingest_epoch=epoch)


def run_concurrent_experiment(
    workload: Workload,
    num_traces: int = 300,
    warmup_traces: int = 100,
    worker_counts: tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    num_shards: int = 0,
    mode: str = "thread",
    ingest_epoch: int = 32,
    abnormal_rate: float = 0.02,
    seed: int = 17,
) -> ConcurrentExperimentResult:
    """Worker-count invariance over one workload and topology.

    The reference is the *same topology at workers=0* (the classic
    single-threaded loop), so the experiment isolates exactly what this
    plane changes; the sharded topology's own equivalence to the single
    backend is pinned separately by the sharded gate.
    """
    stream, _ = generate_stream(
        workload, num_traces, abnormal_rate=abnormal_rate, seed=seed
    )
    reference = MintFramework(
        auto_warmup_traces=warmup_traces,
        deployment=_deployment(num_shards, 0, "thread", ingest_epoch),
    )
    _drive(reference, stream)
    reference_print = fingerprint(reference, stream)

    result = ConcurrentExperimentResult(
        workload=workload.name,
        deployment_label=reference.deployment.describe(),
        worker_counts=tuple(worker_counts),
        mode=mode,
    )
    for workers in worker_counts:
        framework = MintFramework(
            auto_warmup_traces=warmup_traces,
            deployment=_deployment(num_shards, workers, mode, ingest_epoch),
        )
        try:
            _drive(framework, stream)
            candidate_print = fingerprint(framework, stream)
            result.violations.extend(
                compare_fingerprints(
                    reference_print, candidate_print, label=f"workers={workers}"
                )
            )
            if framework._plane is not None:
                result.epochs_applied[workers] = framework._plane.epochs_applied
        finally:
            framework.close()
    return result


def run_snapshot_experiment(
    workload: Workload,
    num_traces: int = 240,
    warmup_traces: int = 80,
    workers: int = 3,
    num_shards: int = 0,
    mode: str = "thread",
    ingest_epoch: int = 16,
    probe_every: int = 40,
    seed: int = 17,
) -> list[str]:
    """Mid-run reads against a live parallel deployment.

    Every ``probe_every`` traces the harness queries the just-ingested
    trace on both the parallel deployment and a sequential twin driven
    in lockstep, and reads the published pattern snapshot.  Checks:
    identical mid-run answers, monotonically non-decreasing snapshot
    versions and pattern counts, and a final snapshot that matches the
    backend store exactly.
    """
    stream, _ = generate_stream(workload, num_traces, abnormal_rate=0.02, seed=seed)
    violations: list[str] = []
    parallel = MintFramework(
        auto_warmup_traces=warmup_traces,
        deployment=_deployment(num_shards, workers, mode, ingest_epoch),
    )
    twin = MintFramework(
        auto_warmup_traces=warmup_traces,
        deployment=_deployment(num_shards, 0, "thread", ingest_epoch),
    )
    try:
        last_version = -1
        last_count = 0
        last_now = 0.0
        for index, (now, trace) in enumerate(stream):
            parallel.process_trace(trace, now)
            twin.process_trace(trace, now)
            last_now = now
            if (index + 1) % probe_every:
                continue
            ours = parallel.query(trace.trace_id)
            theirs = twin.query(trace.trace_id)
            if (ours.status, ours.trace_id) != (theirs.status, theirs.trace_id):
                violations.append(
                    f"trace {index}: mid-run answer {ours.status} != "
                    f"sequential {theirs.status}"
                )
            snapshot = parallel.pattern_snapshot()
            if snapshot.version < last_version:
                violations.append(
                    f"trace {index}: snapshot version went backwards "
                    f"({last_version} -> {snapshot.version})"
                )
            if len(snapshot) < last_count:
                violations.append(
                    f"trace {index}: snapshot lost patterns "
                    f"({last_count} -> {len(snapshot)})"
                )
            last_version, last_count = snapshot.version, len(snapshot)
        parallel.finalize(last_now)
        twin.finalize(last_now)
        snapshot = parallel.pattern_snapshot()
        storage = parallel.backend.storage
        if set(snapshot.span_patterns) != set(storage.span_patterns) or set(
            snapshot.topo_patterns
        ) != set(storage.topo_patterns):
            violations.append("final snapshot does not match the backend store")
        if snapshot.pattern_bytes != storage.pattern_bytes:
            violations.append(
                f"final snapshot pattern bytes {snapshot.pattern_bytes} != "
                f"store {storage.pattern_bytes}"
            )
    finally:
        parallel.close()
        twin.close()
    return violations
