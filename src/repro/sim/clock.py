"""A simulated clock for deterministic experiments."""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time (no-op when already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now
