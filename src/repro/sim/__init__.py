"""Deployment simulation: clocks, meters, clusters and experiments.

The paper's evaluation runs on Kubernetes clusters and Alibaba
production hosts; this package substitutes an in-process simulation
that reproduces the *measured quantities* — bytes on the wire, bytes on
disk, query outcomes, and relative compute cost — for every tracing
framework under identical workloads.
"""

from repro.sim.clock import SimClock
from repro.sim.meters import Meter, OverheadLedger

__all__ = ["SimClock", "Meter", "OverheadLedger"]
