"""The storm harness: analyst query storms against live ingest.

ROADMAP item 2's load half, answered as a measurement: heavy fig14-T5
ingest (1000 requests/s, 5 APIs) runs through a networked deployment
while a *storm* of analyst point queries fires concurrently from a
deterministic seeded schedule
(:meth:`~repro.workloads.queries.QueryWorkload.storm_schedule`) at a
sustained target QPS.  Each query's reported latency includes the wire:
the request/response round trip is costed on the deployment's own
:class:`~repro.net.transport.NetworkDescriptor` (two propagation
latencies plus serialization when bandwidth is finite) on top of the
measured execution wall time — today only *reports* traverse the
simulated wire, so the query path's wire share is modeled as an
overlay rather than scheduled traffic, which keeps the storm read-only
by construction.

That read-only property is the harness's convergence gate: a storm run
must leave byte tables, per-minute network series and the full query
signature bit-identical to a quiet (storm-free, subscription-free) run
of the same stream — analyst load, at any QPS, perturbs nothing the
paper's figures measure.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any

from repro.model.encoding import encoded_size
from repro.net.transport import CHAOS_WIRE
from repro.query.result import QueryStatus
from repro.query.spec import QuerySpec
from repro.sim.experiment import generate_stream
from repro.sim.loadtest import restrict_apis
from repro.transport import Deployment
from repro.workloads import build_dataset, build_onlineboutique, build_trainticket
from repro.workloads.queries import QueryWorkload

#: Modeled wire sizes of the query path: the request (a trace id plus
#: header) and the non-exact responses (an approximate summary, a miss
#: acknowledgement).  Exact responses cost their encoded trace.
QUERY_REQUEST_BYTES = 64
PARTIAL_RESPONSE_BYTES = 256
MISS_RESPONSE_BYTES = 64

_WORKLOAD_BUILDERS = {
    "onlineboutique": build_onlineboutique,
    "trainticket": build_trainticket,
    "alibaba": lambda: build_dataset("A"),
}


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


@dataclass
class StormResult:
    """One storm run: sustained-QPS evidence plus the convergence oracle."""

    workload: str
    topology: str
    traces: int
    duration_s: float
    storm_qps_target: float
    issued: int
    sim_qps: float
    wall_capacity_qps: float
    exec_total_s: float
    p50_ms: float
    p99_ms: float
    wire_p50_ms: float
    wire_p99_ms: float
    statuses: dict[str, int]
    push_bytes: int
    subscription: dict[str, Any] | None
    fingerprint: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "topology": self.topology,
            "traces": self.traces,
            "duration_s": round(self.duration_s, 6),
            "storm_qps_target": self.storm_qps_target,
            "issued": self.issued,
            "sim_qps": round(self.sim_qps, 1),
            "wall_capacity_qps": round(self.wall_capacity_qps, 1),
            "exec_total_s": round(self.exec_total_s, 6),
            "p50_ms": round(self.p50_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "wire_p50_ms": round(self.wire_p50_ms, 4),
            "wire_p99_ms": round(self.wire_p99_ms, 4),
            "statuses": dict(self.statuses),
            "push_bytes": self.push_bytes,
            "subscription": self.subscription,
            "fingerprint": dict(self.fingerprint),
        }


def storm_deployment(topology: str) -> Deployment:
    """The deployment one storm cell runs on — always a real wire
    (:data:`~repro.net.transport.CHAOS_WIRE`), so batching and latency
    sit on both the ingest path and the modeled query round trip."""
    if topology == "single":
        return Deployment.single(network=CHAOS_WIRE)
    if topology.startswith("sharded-"):
        return Deployment.sharded(int(topology.split("-", 1)[1]), network=CHAOS_WIRE)
    raise ValueError(f"unknown storm topology {topology!r}")


def run_storm(
    workload_name: str = "onlineboutique",
    topology: str = "single",
    num_traces: int = 600,
    ingest_qps: float = 1000.0,
    api_count: int = 5,
    storm_qps: float = 1000.0,
    seed: int = 23,
    subscribe_errors: bool = True,
    deployment: Deployment | None = None,
) -> StormResult:
    """Drive one incident-loop storm cell end to end.

    ``storm_qps=0`` is the quiet control: identical ingest, no analyst
    queries, no subscription — its fingerprint is what a storm run's
    must match.  ``subscribe_errors`` keeps one standing error query
    live through the storm, so the push plane is exercised under
    analyst load too (its traffic lands on the ``push`` meter, which
    the fingerprint deliberately excludes).
    """
    from repro.framework import MintFramework

    workload = restrict_apis(_WORKLOAD_BUILDERS[workload_name](), api_count)
    stream, _ = generate_stream(
        workload,
        num_traces,
        abnormal_rate=0.02,
        requests_per_minute=ingest_qps * 60.0,
        seed=seed,
    )
    duration_s = stream[-1][0] if stream else 0.0
    if deployment is None:
        deployment = storm_deployment(topology)
    framework = MintFramework(deployment=deployment)
    subscription = None
    if subscribe_errors and storm_qps > 0:
        subscription = framework.subscribe(QuerySpec.where(error_only=True))

    schedule = (
        QueryWorkload(seed=seed).storm_schedule(
            storm_qps, int(duration_s * storm_qps), seed
        )
        if storm_qps > 0 and duration_s > 0
        else []
    )
    targets = Random(f"storm-targets:{seed}")
    net = framework.deployment.network
    latency_s = net.latency_s if net is not None else 0.0
    bandwidth = net.bandwidth_bytes_per_s if net is not None else 0.0

    ingested: list[str] = []
    totals: list[float] = []
    wires: list[float] = []
    exec_total = 0.0
    statuses: dict[str, int] = {}

    def issue_query() -> None:
        nonlocal exec_total
        trace_id = targets.choice(ingested)
        started = time.perf_counter()
        result = framework.query(trace_id)
        exec_s = time.perf_counter() - started
        exec_total += exec_s
        if result.status is QueryStatus.EXACT and result.trace is not None:
            response = encoded_size(result.trace)
        elif result.status is QueryStatus.PARTIAL:
            response = PARTIAL_RESPONSE_BYTES
        else:
            response = MISS_RESPONSE_BYTES
        # The modeled round trip: request out, response back.  Two
        # propagation delays always; serialization only on a
        # finite-bandwidth wire (0 means infinite, as the descriptor
        # defines it).
        wire_s = 2.0 * latency_s
        if bandwidth > 0:
            wire_s += (QUERY_REQUEST_BYTES + response) / bandwidth
        wires.append(wire_s)
        totals.append(wire_s + exec_s)
        statuses[str(result.status)] = statuses.get(str(result.status), 0) + 1

    arrival = 0
    last_now = 0.0
    for now, trace in stream:
        while arrival < len(schedule) and schedule[arrival] <= now:
            arrival += 1
            if ingested:
                issue_query()
        framework.process_trace(trace, now)
        ingested.append(trace.trace_id)
        last_now = now
    # Arrivals scheduled after the last ingest event still fire — the
    # storm sustains through the stream's whole duration.
    while arrival < len(schedule):
        arrival += 1
        if ingested:
            issue_query()
    framework.finalize(last_now)

    fingerprint = _fingerprint(framework, ingested)
    issued = len(totals)
    result = StormResult(
        workload=workload_name,
        topology=topology,
        traces=len(stream),
        duration_s=duration_s,
        storm_qps_target=storm_qps,
        issued=issued,
        sim_qps=issued / duration_s if duration_s > 0 else 0.0,
        wall_capacity_qps=issued / exec_total if exec_total > 0 else 0.0,
        exec_total_s=exec_total,
        p50_ms=_percentile(totals, 0.50) * 1000.0,
        p99_ms=_percentile(totals, 0.99) * 1000.0,
        wire_p50_ms=_percentile(wires, 0.50) * 1000.0,
        wire_p99_ms=_percentile(wires, 0.99) * 1000.0,
        statuses=statuses,
        push_bytes=framework.push_bytes,
        subscription=(
            None if subscription is None
            else {
                "spec": subscription.spec.describe(),
                "hits": len(subscription.hit_ids),
            }
        ),
        fingerprint=fingerprint,
    )
    framework.close()
    return result


def _fingerprint(framework, trace_ids: list[str]) -> dict[str, Any]:
    """The convergence oracle of one run: every byte table the paper's
    figures read, the per-minute network series, and a digest of the
    full post-hoc query signature.  Deliberately excludes the ``push``
    and ``retransmit`` meters — separated traffic is allowed to differ
    between a storm run and its quiet control; the figures are not."""
    storage = framework.backend.storage
    signature = []
    for result in framework.query_many(trace_ids):
        detail = str(result.status)
        if result.status is QueryStatus.EXACT and result.trace is not None:
            detail += f":{len(result.trace.spans)}"
        elif result.status is QueryStatus.PARTIAL and result.approximate is not None:
            detail += ":" + ",".join(
                f"{seg.topo_pattern_id}/{seg.span_count}"
                for seg in result.approximate.segments
            )
        signature.append((result.trace_id, detail))
    digest = hashlib.sha256(
        json.dumps(signature, separators=(",", ":")).encode()
    ).hexdigest()
    return {
        "network_bytes": framework.network_bytes,
        "storage_bytes": framework.storage_bytes,
        "pattern_bytes": storage.pattern_bytes,
        "bloom_bytes": storage.bloom_bytes,
        "params_bytes": storage.params_bytes,
        "network_series": framework.ledger.network.per_minute_series(),
        "query_signature_sha256": digest,
    }


__all__ = ["StormResult", "run_storm", "storm_deployment"]
