"""The incident harness: fault injected -> RCA flags it, under load.

ROADMAP open item 2's headline question, answered as a measurement: a
fault starts mid-stream on one target service, ingest continues through
the deployment under test (any topology, any chaos profile), and an
analyst-style probe loop periodically queries the incident window and
feeds the reconstructed traces to the RCA suite.  Detection latency is
the simulated time from the first faulty trace entering the system to
the first probe whose RCA top-1 names the target service.

Everything is deterministic: the stream, the fault schedule and the
probe cadence are pure functions of the seed and configuration, and
the wire's chaos is the seeded chaos engine — so a detection-latency
cell is replayable, and the obs bench can gate on the panel existing
*and* detecting, not on a lucky run.

The probes use the public query plane mid-run (``query_many`` over the
recent-trace window, no parameter pull, so probing never pumps the
wire's clock); on a lossy wire the store lags the stream, which is
exactly the effect the panel exists to show — chaos shows up as added
detection latency, not as a different answer.

Since the live analyst plane (PR 10) the probe loop has two modes:
``push`` rides a standing error-only subscription — each accepted push
notification is the analyst's pager, and every ``push_probe_every``-th
one after the fault triggers an RCA probe at the push's wire-time
arrival stamp; ``poll`` is the original fixed-cadence loop, kept as
the fallback for ``observability=False`` deployments (and for
side-by-side comparison in the obs bench).  ``auto`` picks push
whenever the deployment's observability plane is on.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any

from repro.net.chaos import CHAOS_PROFILES, LOSSLESS, fit_partitions
from repro.net.transport import CHAOS_WIRE
from repro.rca.tracerca import TraceRCA
from repro.rca.views import views_from_cursor
from repro.transport import Deployment
from repro.workloads import build_dataset, build_onlineboutique, build_trainticket
from repro.workloads.faults import FaultInjector, FaultSpec, FaultType
from repro.workloads.generator import WorkloadDriver
from repro.workloads.specs import Workload

#: The panel's default grid: two topologies x three chaos profiles.
DEFAULT_TOPOLOGIES = ("single", "sharded-2")
DEFAULT_PROFILES = ("lossless", "drop", "delay")

#: How many recently ingested trace ids a probe queries over (the
#: analyst's incident window: enough pre-fault traffic for RCA's
#: normal-contrast mining, bounded so probes stay cheap).
DEFAULT_PROBE_WINDOW = 200

_WORKLOAD_BUILDERS = {
    "onlineboutique": build_onlineboutique,
    "trainticket": build_trainticket,
    "alibaba": lambda: build_dataset("A"),
}


@dataclass(frozen=True)
class IncidentProbe:
    """One analyst probe: when it ran and what RCA said."""

    time_s: float
    traces_seen: int
    flagged: str | None
    hit: bool

    def as_dict(self) -> dict[str, Any]:
        return {
            "time_s": round(self.time_s, 6),
            "traces_seen": self.traces_seen,
            "flagged": self.flagged,
            "hit": self.hit,
        }


@dataclass
class IncidentResult:
    """One cell of the detection-latency panel."""

    workload: str
    topology: str
    profile: str
    target_service: str
    fault_type: str
    fault_time_s: float
    detected_time_s: float | None
    detection_latency_s: float | None
    detected: bool
    faulty_traces: int
    traces: int
    probe_mode: str = "poll"
    probes: list[IncidentProbe] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "topology": self.topology,
            "profile": self.profile,
            "probe_mode": self.probe_mode,
            "target_service": self.target_service,
            "fault_type": self.fault_type,
            "fault_time_s": round(self.fault_time_s, 6),
            "detected_time_s": (
                None if self.detected_time_s is None
                else round(self.detected_time_s, 6)
            ),
            "detection_latency_s": (
                None if self.detection_latency_s is None
                else round(self.detection_latency_s, 6)
            ),
            "detected": self.detected,
            "faulty_traces": self.faulty_traces,
            "traces": self.traces,
            "probes": [probe.as_dict() for probe in self.probes],
        }


def incident_deployment(topology: str, profile: str, duration_s: float) -> Deployment:
    """Build the deployment one panel cell runs on.

    Every cell rides :data:`~repro.net.transport.CHAOS_WIRE` (batching
    plus a little latency) so the wire's mechanics are on the measured
    path even in the lossless cell — profile differences, not batching
    differences, are what the panel compares.  Partition windows are
    fitted into the stream's lifetime.
    """
    chaos = LOSSLESS if profile == "lossless" else CHAOS_PROFILES[profile]
    chaos = fit_partitions(chaos, duration_s)
    wire = CHAOS_WIRE.with_chaos(chaos)
    if topology == "single":
        return Deployment.single(network=wire)
    if topology.startswith("sharded-"):
        return Deployment.sharded(int(topology.split("-", 1)[1]), network=wire)
    raise ValueError(f"unknown incident topology {topology!r}")


def _build_incident_stream(
    workload: Workload,
    num_traces: int,
    fault_start_frac: float,
    fault_type: FaultType,
    fault_rate: float,
    seed: int,
    requests_per_minute: float,
):
    """Deterministic stream with a mid-stream single-service incident.

    Returns ``(stream, target_service, fault_time_s, faulty_ids)``.
    The target is the most frequently touched *non-universal* service
    after the fault start (ties broken by name): high support so RCA's
    support x confidence mining has evidence, but not the root service
    every trace touches — that target would be trivially nameable.
    """
    driver = WorkloadDriver(
        workload, seed=seed, requests_per_minute=requests_per_minute
    )
    stream = list(driver.traces(num_traces))
    fault_index = max(1, min(num_traces - 1, int(num_traces * fault_start_frac)))
    post_fault = len(stream) - fault_index
    support: Counter[str] = Counter()
    for _, trace in stream[fault_index:]:
        support.update(trace.services)
    candidates = [svc for svc in support if support[svc] < post_fault] or list(support)
    target = max(sorted(candidates), key=lambda svc: support[svc])
    injector = FaultInjector(seed=seed ^ 0x77)
    rng = random.Random(seed ^ 0x5150)
    fault_time = stream[fault_index][0]
    faulty_ids: set[str] = set()
    for i in range(fault_index, num_traces):
        now, trace = stream[i]
        if target in trace.services and rng.random() < fault_rate:
            stream[i] = (now, injector.inject(trace, FaultSpec(fault_type, target)))
            faulty_ids.add(trace.trace_id)
    return stream, target, fault_time, faulty_ids


def run_incident(
    workload_name: str = "onlineboutique",
    topology: str = "single",
    profile: str = "lossless",
    num_traces: int = 320,
    fault_start_frac: float = 0.35,
    fault_type: FaultType = FaultType.CODE_EXCEPTION,
    fault_rate: float = 0.65,
    probe_every: int = 30,
    probe_window: int = DEFAULT_PROBE_WINDOW,
    probe_mode: str = "auto",
    push_probe_every: int = 5,
    seed: int = 11,
    requests_per_minute: float = 6000.0,
    deployment: Deployment | None = None,
) -> IncidentResult:
    """Run one incident cell end to end and measure detection latency.

    In ``push`` mode the analyst holds a standing error-only
    subscription: every ``push_probe_every``-th accepted push after the
    fault triggers an RCA probe at the push's arrival time — the pager
    rings, the analyst looks.  In ``poll`` mode the original loop
    re-runs every ``probe_every`` ingested traces.  ``auto`` picks push
    when the deployment's observability plane is on, poll otherwise.
    Either way, if no mid-run probe detects (a lossy wire can keep the
    store behind the stream for the whole run), a final probe after
    ``finalize`` runs against the converged store — detection then
    costs the full drain-to-convergence latency, which is the honest
    number.
    """
    from repro.framework import MintFramework
    from repro.query.spec import QuerySpec

    workload = _WORKLOAD_BUILDERS[workload_name]()
    stream, target, fault_time, faulty_ids = _build_incident_stream(
        workload, num_traces, fault_start_frac, fault_type, fault_rate,
        seed, requests_per_minute,
    )
    duration_s = stream[-1][0] if stream else 0.0
    if deployment is None:
        deployment = incident_deployment(topology, profile, duration_s)
    if probe_mode == "auto":
        probe_mode = "push" if deployment.observability else "poll"
    if probe_mode not in ("push", "poll"):
        raise ValueError(f"unknown probe_mode {probe_mode!r}")
    framework = MintFramework(deployment=deployment)
    rca = TraceRCA()
    recent: deque[str] = deque(maxlen=probe_window)
    probes: list[IncidentProbe] = []
    detected_time: float | None = None
    last_now = 0.0
    seen_traces = 0
    pushes_after_fault = 0

    def probe(now: float, seen: int) -> None:
        nonlocal detected_time
        views = views_from_cursor(framework.query_many(list(recent)))
        flagged = rca.top1(views)
        hit = flagged == target
        probes.append(
            IncidentProbe(time_s=now, traces_seen=seen, flagged=flagged, hit=hit)
        )
        if hit and detected_time is None:
            detected_time = now

    if probe_mode == "push":
        # The pager: a standing error-only query.  The callback fires on
        # each accepted push at its wire-time arrival — on a lossy wire
        # the pushes themselves lag, and that lag honestly lands in the
        # measured detection latency.
        def on_push(note, now: float) -> None:
            nonlocal pushes_after_fault
            if detected_time is not None or now < fault_time:
                return
            pushes_after_fault += 1
            if pushes_after_fault % push_probe_every == 0:
                probe(now, seen_traces)

        framework.subscribe(QuerySpec.where(error_only=True), on_push=on_push)

    for i, (now, trace) in enumerate(stream):
        seen_traces = i + 1
        framework.process_trace(trace, now)
        recent.append(trace.trace_id)
        last_now = now
        if (
            probe_mode == "poll"
            and detected_time is None
            and now >= fault_time
            and (i + 1) % probe_every == 0
        ):
            probe(now, i + 1)
    framework.finalize(last_now)
    if detected_time is None:
        # Post-convergence probe at the wire's (possibly drain-advanced)
        # clock — a lossy wire's forced delivery takes simulated time,
        # and that time is part of the detection latency.
        probe(max(last_now, framework.transport.wire_now()), len(stream))
    framework.close()
    return IncidentResult(
        workload=workload_name,
        topology=topology,
        profile=profile,
        target_service=target,
        fault_type=fault_type.value if hasattr(fault_type, "value") else str(fault_type),
        fault_time_s=fault_time,
        detected_time_s=detected_time,
        detection_latency_s=(
            None if detected_time is None else max(0.0, detected_time - fault_time)
        ),
        detected=detected_time is not None,
        faulty_traces=len(faulty_ids),
        traces=len(stream),
        probe_mode=probe_mode,
        probes=probes,
    )


def detection_latency_panel(
    workload_name: str = "onlineboutique",
    topologies: tuple[str, ...] = DEFAULT_TOPOLOGIES,
    profiles: tuple[str, ...] = DEFAULT_PROFILES,
    num_traces: int = 320,
    seed: int = 11,
    **kwargs: Any,
) -> list[IncidentResult]:
    """The fig15-style panel: every (topology, chaos profile) cell."""
    return [
        run_incident(
            workload_name=workload_name,
            topology=topology,
            profile=profile,
            num_traces=num_traces,
            seed=seed,
            **kwargs,
        )
        for topology in topologies
        for profile in profiles
    ]
